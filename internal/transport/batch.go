package transport

import (
	"net"
	"time"
)

// Datagram is one outbound UDP message for the batched send path.
type Datagram struct {
	Data []byte
	Dst  *net.UDPAddr
}

// BatchReader holds the reusable per-caller state of the batched receive
// path: packet slots, their buffers, and (on Linux) the mmsghdr/iovec/
// sockaddr arrays recvmmsg fills. A BatchReader belongs to one goroutine;
// several goroutines batch-reading one socket each use their own.
//
// The reader owns its buffers: every ReadBatch call reuses them, so a
// packet's Data is valid only until the caller's next ReadBatch on the
// same reader. The proxy's receive path copies datagram bytes into the
// parsed message before the next read, so no pool traffic is needed at
// all — the batched path's buffer management is allocation-free after
// construction.
type BatchReader struct {
	pkts []Packet
	bufs [][]byte
	bids []uint16 // uring ingress buffers loaned to the caller, returned next call
	sys  batchReaderOS
}

// NewBatchReader sizes a reader for up to n datagrams per call, clamped
// to [1, MaxBatch].
func (s *UDPSocket) NewBatchReader(n int) *BatchReader {
	if n < 1 {
		n = 1
	}
	if n > MaxBatch {
		n = MaxBatch
	}
	br := &BatchReader{
		pkts: make([]Packet, n),
		bufs: make([][]byte, n),
	}
	for i := range br.bufs {
		br.bufs[i] = make([]byte, MaxDatagram)
	}
	br.sys.init(br)
	return br
}

// Packets exposes the reader's packet slots; the first n returned by the
// last ReadBatch are valid.
func (br *BatchReader) Packets() []Packet { return br.pkts }

// ReadBatch blocks until at least one datagram is available and returns
// how many arrived (up to the reader's capacity). On Linux this is one
// recvmmsg syscall draining the socket queue; elsewhere it degrades to the
// single-packet read, returning 1. Deadlines set via SetReadDeadline and
// Close both unblock it, exactly like ReadPacket.
func (s *UDPSocket) ReadBatch(br *BatchReader) (int, error) {
	if s.uring != nil {
		return s.uring.readBatch(br)
	}
	if s.mmsg {
		n, err := s.readBatchMmsg(br)
		if err != nil {
			return 0, err
		}
		s.recvSyscalls.Inc()
		s.recvMsgs.Add(int64(n))
		s.recvOcc.Record(time.Duration(n))
		return n, nil
	}
	n, src, err := s.conn.ReadFromUDP(br.bufs[0])
	if err != nil {
		return 0, err
	}
	s.recvSyscalls.Inc()
	s.recvMsgs.Inc()
	s.recvOcc.Record(1)
	br.pkts[0] = Packet{Data: br.bufs[0][:n], Src: src}
	return 1, nil
}

// BatchWriter holds the reusable per-caller state of the batched send
// path. Like BatchReader it belongs to one goroutine (or one lock holder:
// the Egress serializes its flushes).
type BatchWriter struct {
	cap int
	sys batchWriterOS
}

// NewBatchWriter sizes a writer for up to n datagrams per syscall,
// clamped to [1, MaxBatch].
func (s *UDPSocket) NewBatchWriter(n int) *BatchWriter {
	if n < 1 {
		n = 1
	}
	if n > MaxBatch {
		n = MaxBatch
	}
	bw := &BatchWriter{cap: n}
	bw.sys.init(n)
	return bw
}

// WriteBatch sends every datagram in dgs. On Linux each chunk of up to the
// writer's capacity goes out in one sendmmsg syscall (short sends continue
// from where the kernel stopped); elsewhere it loops over single sends.
// The datagrams' Data is not retained past the call.
func (s *UDPSocket) WriteBatch(bw *BatchWriter, dgs []Datagram) error {
	if s.uring != nil {
		return s.uring.writeBatch(dgs)
	}
	for len(dgs) > 0 {
		chunk := dgs
		if len(chunk) > bw.cap {
			chunk = chunk[:bw.cap]
		}
		dgs = dgs[len(chunk):]
		if s.mmsg {
			calls, err := s.writeBatchMmsg(bw, chunk)
			s.sendSyscalls.Add(int64(calls))
			if err != nil {
				return err
			}
			s.sendMsgs.Add(int64(len(chunk)))
			s.sendOcc.Record(time.Duration(len(chunk)))
			continue
		}
		for _, dg := range chunk {
			if err := s.WriteTo(dg.Data, dg.Dst); err != nil {
				return err
			}
		}
	}
	return nil
}
