// Portable shell of the stream I/O engine: the uring-backed listener and
// connection factory the stream architectures use when -io-engine uring is
// selected. On platforms without io_uring (or when the probe fails) the
// constructor reports unsupported and callers keep the portable
// net.Listener path.
package transport

import (
	"net"

	"gosip/internal/metrics"
)

// StreamEngineOptions shapes a stream engine.
type StreamEngineOptions struct {
	// Profile receives ring instrumentation (nil-safe).
	Profile *metrics.Profile
	// RcvBuf/SndBuf request socket buffer sizes on accepted connections
	// (dialed connections are configured by the dialer before wrapping).
	RcvBuf, SndBuf int
	// Ring is the submission-queue depth (0 = 256).
	Ring int
	// Bufs is the ingress buffer-ring population (0 = 1024).
	Bufs int
	// BufSize is the ingress buffer size in bytes (0 = 8192).
	BufSize int
}

// streamEngineImpl is the platform half of the stream engine.
type streamEngineImpl interface {
	Listen(addr string) (net.Listener, error)
	Wrap(nc net.Conn) (net.Conn, error)
	Close() error
}

// StreamEngine runs stream-socket I/O through io_uring: accepted and
// dialed connections become completion-driven net.Conns (multishot RECV
// into a shared registered buffer ring; queued writes group-committed into
// single SENDMSG submissions), and listeners accept via multishot ACCEPT.
// One engine (one ring, one reaper goroutine) serves a whole server.
type StreamEngine struct {
	impl streamEngineImpl
}

// NewStreamEngine builds a stream engine, or returns (nil, nil) when
// io_uring is unavailable on this platform or kernel — the caller's signal
// to stay on the portable path.
func NewStreamEngine(o StreamEngineOptions) (*StreamEngine, error) {
	impl, err := newStreamEngineImpl(o)
	if err != nil {
		return nil, err
	}
	if impl == nil {
		return nil, nil
	}
	return &StreamEngine{impl: impl}, nil
}

// Listen opens a TCP listener whose accept path is a multishot ACCEPT
// submission and whose connections are engine-backed.
func (e *StreamEngine) Listen(addr string) (net.Listener, error) { return e.impl.Listen(addr) }

// Wrap converts an established connection (a dialer's *net.TCPConn) into
// an engine-backed one. The original conn's fd is duplicated and the
// original closed; addresses are preserved.
func (e *StreamEngine) Wrap(nc net.Conn) (net.Conn, error) { return e.impl.Wrap(nc) }

// Close cancels every outstanding operation, closes every engine-backed
// connection and listener, and releases the ring.
func (e *StreamEngine) Close() error { return e.impl.Close() }

// IsEngineConn reports whether nc is an engine-backed connection.
func IsEngineConn(nc net.Conn) bool { return isEngineConn(nc) }
