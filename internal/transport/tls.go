package transport

import (
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net"
	"sync"
	"time"

	"gosip/internal/metrics"
)

// TLS is the secure stream transport. It rides the same StreamConn
// machinery as TCP — framing reader, shared write lock, group-commit
// coalescing — with a crypto/tls layer slotted between the socket and the
// framing, so every stream-side mechanism (read-pause backpressure, the
// connmgr policies, writev coalescing) applies unchanged.
const TLS Kind = "TLS"

// DefaultHandshakeTimeout bounds explicit TLS handshakes: a peer that
// connects and then stalls mid-handshake must not pin a reader goroutine.
const DefaultHandshakeTimeout = 5 * time.Second

// tlsTicketKeyHistory is how many server session-ticket keys stay live
// after rotation, so tickets issued under the previous key still resume.
const tlsTicketKeyHistory = 3

// TLSOptions configures a TLSContext. One context can serve both roles:
// the certificate is presented to peers on accepted connections, and the
// root pool verifies dialed ones.
type TLSOptions struct {
	// Cert is the certificate presented on accepted connections (and for
	// client auth if a peer requests it). Generate at runtime with
	// GenerateSelfSigned — no key material belongs in the repository.
	Cert tls.Certificate
	// RootCAs verifies dialed peers. Nil falls back to the system pool.
	RootCAs *x509.CertPool
	// InsecureSkipVerify disables dial-side verification — only for
	// pointing the load generator at a proxy whose CA it does not hold.
	InsecureSkipVerify bool
	// Resume arms a client session cache on the dial side so reconnects
	// resume with a session ticket instead of a full handshake.
	Resume bool
	// SessionCache is the client session cache to use when Resume is set;
	// nil creates a private LRU. Sharing one cache across a phone fleet
	// models a UA farm amortizing tickets across reconnects.
	SessionCache tls.ClientSessionCache
	// TicketRotate, when positive, rotates the server's session-ticket key
	// on this period (keeping tlsTicketKeyHistory keys live). Zero keeps
	// crypto/tls's internal automatic rotation.
	TicketRotate time.Duration
	// HandshakeTimeout bounds explicit handshakes (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// Profile receives handshake instrumentation. Nil is valid: counters
	// and the stage histogram become no-ops.
	Profile *metrics.Profile
}

// TLSContext holds the two tls.Configs, the resumption machinery, and the
// handshake instrumentation for one endpoint (proxy or phone fleet). All
// methods are safe for concurrent use; Server/Client/Handshake are also
// safe on a nil receiver, degrading to plain-TCP no-ops so stream call
// sites need no branching.
type TLSContext struct {
	server    *tls.Config
	client    *tls.Config
	hsTimeout time.Duration
	resume    bool

	full      *metrics.Counter
	resumed   *metrics.Counter
	failures  *metrics.Counter
	rotations *metrics.Counter
	hsHist    *metrics.Histogram

	mu         sync.Mutex
	ticketKeys [][32]byte
	rotateStop chan struct{}
	rotateDone chan struct{}
	closeOnce  sync.Once
}

// NewTLSContext builds a context from options. The returned context owns a
// ticket-rotation goroutine when TicketRotate is set; Close releases it.
func NewTLSContext(o TLSOptions) (*TLSContext, error) {
	if len(o.Cert.Certificate) == 0 {
		return nil, fmt.Errorf("transport: TLS context requires a certificate")
	}
	t := &TLSContext{
		hsTimeout: o.HandshakeTimeout,
		resume:    o.Resume,
	}
	if t.hsTimeout <= 0 {
		t.hsTimeout = DefaultHandshakeTimeout
	}
	if p := o.Profile; p != nil {
		t.full = p.Counter(metrics.MetricTLSFullHandshakes)
		t.resumed = p.Counter(metrics.MetricTLSResumptions)
		t.failures = p.Counter(metrics.MetricTLSHandshakeFailures)
		t.rotations = p.Counter(metrics.MetricTLSTicketRotations)
		t.hsHist = p.Histogram(metrics.StageHandshake)
	}
	t.server = &tls.Config{
		Certificates: []tls.Certificate{o.Cert},
		MinVersion:   tls.VersionTLS12,
	}
	t.client = &tls.Config{
		Certificates:       []tls.Certificate{o.Cert},
		RootCAs:            o.RootCAs,
		InsecureSkipVerify: o.InsecureSkipVerify,
		MinVersion:         tls.VersionTLS12,
	}
	if o.Resume {
		cache := o.SessionCache
		if cache == nil {
			cache = tls.NewLRUClientSessionCache(1024)
		}
		t.client.ClientSessionCache = cache
	}
	if o.TicketRotate > 0 {
		// Install an explicit key so rotation is ours to drive; the newest
		// key encrypts new tickets, older ones still decrypt (resume) until
		// they age out of the history window.
		if err := t.rotateTicketKey(); err != nil {
			return nil, err
		}
		t.rotateStop = make(chan struct{})
		t.rotateDone = make(chan struct{})
		go t.rotateLoop(o.TicketRotate)
	}
	return t, nil
}

// rotateTicketKey prepends a fresh random ticket key and re-arms the server
// config. The first call installs the initial key (not counted as a
// rotation); later ones increment the rotation counter.
func (t *TLSContext) rotateTicketKey() error {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("transport: ticket key: %w", err)
	}
	t.mu.Lock()
	first := len(t.ticketKeys) == 0
	t.ticketKeys = append([][32]byte{key}, t.ticketKeys...)
	if len(t.ticketKeys) > tlsTicketKeyHistory {
		t.ticketKeys = t.ticketKeys[:tlsTicketKeyHistory]
	}
	keys := make([][32]byte, len(t.ticketKeys))
	copy(keys, t.ticketKeys)
	t.mu.Unlock()
	t.server.SetSessionTicketKeys(keys)
	if !first {
		t.rotations.Inc()
	}
	return nil
}

func (t *TLSContext) rotateLoop(period time.Duration) {
	defer close(t.rotateDone)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = t.rotateTicketKey() // crypto/rand failure: keep current keys
		case <-t.rotateStop:
			return
		}
	}
}

// ResumptionArmed reports whether dials use a client session cache.
func (t *TLSContext) ResumptionArmed() bool { return t != nil && t.resume }

// Server wraps an accepted connection in the server-side TLS layer. The
// handshake is NOT run here: it happens lazily on first read, or
// explicitly (measured, bounded) via Handshake. Nil context: nc unchanged.
func (t *TLSContext) Server(nc net.Conn) net.Conn {
	if t == nil {
		return nc
	}
	return tls.Server(nc, t.server)
}

// Client wraps an established connection in the client-side TLS layer for
// a dial to hostport; the host part becomes the ServerName certificates
// are verified against (IP literals verify against IP SANs).
func (t *TLSContext) Client(nc net.Conn, hostport string) *tls.Conn {
	host, _, err := net.SplitHostPort(hostport)
	if err != nil {
		host = hostport
	}
	cfg := t.client.Clone() // the session cache pointer is shared across clones
	cfg.ServerName = host
	return tls.Client(nc, cfg)
}

// Handshake drives nc's TLS handshake to completion under the context's
// timeout, recording the duration in the stage.handshake histogram and
// classifying it as resumed or full via the connection state. Connections
// that are not TLS, or whose handshake already completed (a dialed
// connection re-entering the accepted-side path), are no-ops returning a
// zero duration.
func (t *TLSContext) Handshake(nc net.Conn) (time.Duration, error) {
	if t == nil {
		return 0, nil
	}
	tc, ok := nc.(*tls.Conn)
	if !ok || tc.ConnectionState().HandshakeComplete {
		return 0, nil
	}
	start := time.Now()
	_ = tc.SetDeadline(start.Add(t.hsTimeout))
	err := tc.Handshake()
	d := time.Since(start)
	if err != nil {
		t.failures.Inc()
		return d, fmt.Errorf("transport: tls handshake: %w", err)
	}
	_ = tc.SetDeadline(time.Time{})
	t.hsHist.Record(d)
	if tc.ConnectionState().DidResume {
		t.resumed.Inc()
	} else {
		t.full.Inc()
	}
	return d, nil
}

// DialAddr dials hostport over TCP, arms NoDelay, layers the client TLS
// state on, and completes the handshake (measured and bounded). The
// returned connection is ready for a StreamConn wrapper.
func (t *TLSContext) DialAddr(hostport string, timeout time.Duration) (*tls.Conn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	nc, err := net.DialTimeout("tcp", hostport, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tls %q: %w", hostport, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	tlc := t.Client(nc, hostport)
	if _, err := t.Handshake(tlc); err != nil {
		tlc.Close()
		return nil, err
	}
	return tlc, nil
}

// Close stops the ticket-rotation goroutine. Idempotent; contexts without
// rotation need not be closed but may be.
func (t *TLSContext) Close() {
	if t == nil || t.rotateStop == nil {
		return
	}
	t.closeOnce.Do(func() {
		close(t.rotateStop)
		<-t.rotateDone
	})
}
