package transport

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"gosip/internal/metrics"
	"gosip/internal/testutil"
)

// parityCorpus builds the payload set the engine-parity tests push through
// every engine: pathological sizes (1 byte, buffer-size boundaries, bigger
// than a send slot), full byte coverage, and SIP-shaped text with awkward
// whitespace in the torture-corpus spirit.
func parityCorpus() [][]byte {
	all := make([]byte, 1024)
	for i := range all {
		all[i] = byte(i)
	}
	sip := []byte("INVITE sip:bob@b.example SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP a.example;branch=z9hG4bK1\r\n" +
		"From: \"Watson, come here; now\" <sip:a@a.example>;tag=x\r\n" +
		"To: <sip:bob@b.example>\r\n" +
		"Call-ID:    spaced-out   \r\n" +
		"CSeq: 1 INVITE\r\n\r\n")
	big := make([]byte, 9000) // larger than a uring send slot: fallback path
	for i := range big {
		big[i] = byte(i * 7)
	}
	// Exactly fills a default-size (4096B) uring ingress buffer: 44 bytes of
	// recvmsg_out header + name area precede the payload.
	boundary := make([]byte, 4096-44)
	for i := range boundary {
		boundary[i] = byte(i * 13)
	}
	return [][]byte{
		[]byte("x"),
		sip,
		all,
		boundary,
		big,
	}
}

// udpEngines enumerates the engines a UDP parity run covers on this
// platform.
func udpEngines(t *testing.T) []IOEngine {
	engines := []IOEngine{EnginePortable, EngineBatch}
	if UringSupported() {
		engines = append(engines, EngineUring)
	} else {
		_, _, reason := UringProbeInfo()
		t.Logf("io_uring unavailable (%s): parity covers portable and batch only", reason)
	}
	return engines
}

func openParitySocket(t *testing.T, engine IOEngine) *UDPSocket {
	t.Helper()
	s, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{
		Engine:    engine,
		BatchSize: 8,
		// Size ingress buffers for the corpus' largest datagram so parity is
		// exact; the default 4096 is a deliberate truncation boundary covered
		// by TestUringOversizeTruncationCounted.
		UringBufSize: 16 << 10,
		Profile:      metrics.NewProfile(),
	})
	if err != nil {
		t.Fatalf("listen(%s): %v", engine, err)
	}
	t.Cleanup(func() { s.Close() })
	if engine == EngineUring && s.Engine() != EngineUring {
		t.Fatalf("engine = %s, want uring", s.Engine())
	}
	return s
}

// TestEngineParityUDPReceive pins byte-identical ingress across engines:
// the same datagrams, delivered with the same bytes, for both ReadBatch and
// ReadPacket consumers.
func TestEngineParityUDPReceive(t *testing.T) {
	corpus := parityCorpus()
	type result map[string]int
	digest := func(received [][]byte) result {
		r := make(result)
		for _, b := range received {
			r[fmt.Sprintf("%x", sha256.Sum256(b))]++
		}
		return r
	}
	want := digest(corpus)

	for _, engine := range udpEngines(t) {
		for _, mode := range []string{"batch", "packet"} {
			t.Run(string(engine)+"/"+mode, func(t *testing.T) {
				s := openParitySocket(t, engine)
				peer, err := net.DialUDP("udp", nil, s.LocalAddr())
				if err != nil {
					t.Fatal(err)
				}
				defer peer.Close()
				for _, p := range corpus {
					if _, err := peer.Write(p); err != nil {
						t.Fatal(err)
					}
				}
				var got [][]byte
				deadline := time.Now().Add(2 * time.Second)
				br := s.NewBatchReader(8)
				for len(got) < len(corpus) {
					if err := s.SetReadDeadline(deadline); err != nil {
						t.Fatal(err)
					}
					if mode == "batch" {
						n, err := s.ReadBatch(br)
						if err != nil {
							t.Fatalf("after %d: %v", len(got), err)
						}
						for _, p := range br.Packets()[:n] {
							got = append(got, append([]byte(nil), p.Data...))
						}
					} else {
						p, err := s.ReadPacket()
						if err != nil {
							t.Fatalf("after %d: %v", len(got), err)
						}
						got = append(got, append([]byte(nil), p.Data...))
						s.Release(p)
					}
				}
				if d := digest(got); fmt.Sprint(d) != fmt.Sprint(want) {
					t.Errorf("delivered multiset differs:\n got %v\nwant %v", d, want)
				}
			})
		}
	}
}

// TestEngineParityUDPSend pins byte-identical egress: WriteBatch through
// each engine delivers the same datagrams to the peer.
func TestEngineParityUDPSend(t *testing.T) {
	corpus := parityCorpus()
	for _, engine := range udpEngines(t) {
		t.Run(string(engine), func(t *testing.T) {
			s := openParitySocket(t, engine)
			peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer peer.Close()
			dst := peer.LocalAddr().(*net.UDPAddr)
			var dgs []Datagram
			for _, p := range corpus {
				dgs = append(dgs, Datagram{Data: p, Dst: dst})
			}
			bw := s.NewBatchWriter(8)
			if err := s.WriteBatch(bw, dgs); err != nil {
				t.Fatal(err)
			}
			want := make(map[string]int)
			for _, p := range corpus {
				want[string(p)]++
			}
			buf := make([]byte, MaxDatagram)
			peer.SetReadDeadline(time.Now().Add(2 * time.Second))
			for i := 0; i < len(corpus); i++ {
				n, _, err := peer.ReadFromUDP(buf)
				if err != nil {
					t.Fatalf("after %d datagrams: %v", i, err)
				}
				key := string(buf[:n])
				if want[key] == 0 {
					t.Fatalf("unexpected datagram (%d bytes)", n)
				}
				want[key]--
			}
		})
	}
}

// TestEngineParityStream pins bit-identical stream delivery: the corpus
// concatenated over a connection echoes back unchanged through both the
// portable listener and the uring engine (multishot ACCEPT + RECV,
// group-committed sends).
func TestEngineParityStream(t *testing.T) {
	corpus := parityCorpus()
	// One large payload exercises segmentation across many ring buffers.
	big := make([]byte, 256<<10)
	for i := range big {
		big[i] = byte(i * 31)
	}
	corpus = append(corpus, big)

	runEcho := func(t *testing.T, ln net.Listener) [32]byte {
		t.Helper()
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			io.Copy(c, c)
		}()
		cl, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var sent bytes.Buffer
		for _, p := range corpus {
			sent.Write(p)
		}
		go func() {
			for _, p := range corpus {
				if _, err := cl.Write(p); err != nil {
					return
				}
			}
			cl.(*net.TCPConn).CloseWrite()
		}()
		h := sha256.New()
		cl.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := io.Copy(h, io.LimitReader(cl, int64(sent.Len())))
		if err != nil || n != int64(sent.Len()) {
			t.Fatalf("echoed %d/%d bytes: %v", n, sent.Len(), err)
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		if sum != sha256.Sum256(sent.Bytes()) {
			t.Fatal("echoed bytes differ from sent bytes")
		}
		return sum
	}

	lnPortable, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnPortable.Close()
	sumPortable := runEcho(t, lnPortable)

	if !UringSupported() {
		t.Skip("no io_uring: portable stream path verified, parity pair skipped")
	}
	eng, err := NewStreamEngine(StreamEngineOptions{Profile: metrics.NewProfile()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	lnUring, err := eng.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lnUring.Close()
	if sumUring := runEcho(t, lnUring); sumUring != sumPortable {
		t.Error("uring and portable stream engines delivered different bytes")
	}
}

// TestUringStreamConcurrentWriters drives one engine conn from many
// goroutines and asserts every record arrives intact and whole — the
// group-commit send path must preserve write atomicity exactly like the
// coalesced StreamConn contract.
func TestUringStreamConcurrentWriters(t *testing.T) {
	if !UringSupported() {
		t.Skip("no io_uring")
	}
	eng, err := NewStreamEngine(StreamEngineOptions{Profile: metrics.NewProfile()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ln, err := eng.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const writers, perWriter = 8, 200
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var srv net.Conn
	select {
	case srv = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	defer srv.Close()
	if !IsEngineConn(srv) {
		t.Fatalf("accepted conn is %T, want engine conn", srv)
	}

	// Records: [writer u8][seq u16][len u16][payload]. Payload bytes encode
	// the writer id so corruption or interleaving is detectable.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				n := 5 + (w*perWriter+seq)%512
				rec := make([]byte, 5+n)
				rec[0] = byte(w)
				binary.BigEndian.PutUint16(rec[1:], uint16(seq))
				binary.BigEndian.PutUint16(rec[3:], uint16(n))
				for i := 0; i < n; i++ {
					rec[5+i] = byte(w ^ i)
				}
				if _, err := srv.Write(rec); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	rd := make([]byte, 5)
	seen := make([][]bool, writers)
	for i := range seen {
		seen[i] = make([]bool, perWriter)
	}
	cl.SetReadDeadline(time.Now().Add(10 * time.Second))
	for total := 0; total < writers*perWriter; total++ {
		if _, err := io.ReadFull(cl, rd); err != nil {
			t.Fatalf("record %d header: %v", total, err)
		}
		w, seq, n := int(rd[0]), int(binary.BigEndian.Uint16(rd[1:])), int(binary.BigEndian.Uint16(rd[3:]))
		if w >= writers || seq >= perWriter {
			t.Fatalf("record %d: corrupt header %v", total, rd)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(cl, payload); err != nil {
			t.Fatalf("record %d body: %v", total, err)
		}
		for i, b := range payload {
			if b != byte(w^i) {
				t.Fatalf("record %d (writer %d seq %d): corrupt payload at %d", total, w, seq, i)
			}
		}
		if seen[w][seq] {
			t.Fatalf("writer %d seq %d delivered twice", w, seq)
		}
		seen[w][seq] = true
	}
	<-done
}

// TestUringStreamReadDeadline pins the deadline semantics the worker
// idle-return path depends on: SetReadDeadline(now) unblocks a blocked
// Read with a timeout error, and clearing it restores normal reads.
func TestUringStreamReadDeadline(t *testing.T) {
	if !UringSupported() {
		t.Skip("no io_uring")
	}
	eng, err := NewStreamEngine(StreamEngineOptions{Profile: metrics.NewProfile()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ln, err := eng.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := <-accepted
	defer srv.Close()

	unblocked := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := srv.Read(buf)
		unblocked <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Read block
	srv.SetReadDeadline(time.Now())
	select {
	case err := <-unblocked:
		ne, ok := err.(net.Error)
		if !ok || !ne.Timeout() {
			t.Fatalf("want timeout error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read not unblocked by immediate deadline")
	}
	srv.SetReadDeadline(time.Time{})
	cl.Write([]byte("after"))
	buf := make([]byte, 16)
	n, err := srv.Read(buf)
	if err != nil || string(buf[:n]) != "after" {
		t.Fatalf("read after deadline clear: %q, %v", buf[:n], err)
	}
}

// TestUringProbeDeniedFallsBackToBatch forces the probe to report denial
// and asserts the socket degrades to exactly the batch engine — same
// delivery, same MmsgActive arming — so a kernel or seccomp denial at
// startup is behaviourally invisible.
func TestUringProbeDeniedFallsBackToBatch(t *testing.T) {
	prev := SetUringForceDenied(true)
	defer SetUringForceDenied(prev)

	if UringSupported() {
		t.Fatal("probe not denied by force hook")
	}
	s, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{Engine: EngineUring, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Engine(); got == EngineUring {
		t.Fatalf("engine = %s after denied probe", got)
	}
	if mmsgAvailable && !s.MmsgActive() {
		t.Error("batch fallback did not arm mmsg")
	}
	eng, err := NewStreamEngine(StreamEngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if eng != nil {
		eng.Close()
		t.Fatal("stream engine built despite denied probe")
	}
	// The socket must behave exactly like a batch-engine one.
	peer, err := net.DialUDP("udp", nil, s.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.Write([]byte("fallback"))
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	p, err := s.ReadPacket()
	if err != nil || string(p.Data) != "fallback" {
		t.Fatalf("fallback read: %q, %v", p.Data, err)
	}
	s.Release(p)
}

// TestUringOversizeTruncationCounted pins the ingress buffer boundary
// behaviour: a datagram larger than a ring buffer arrives truncated (the
// kernel's recvmsg semantics) and the truncation is counted, never silent.
func TestUringOversizeTruncationCounted(t *testing.T) {
	if !UringSupported() {
		t.Skip("no io_uring")
	}
	prof := metrics.NewProfile()
	s, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{
		Engine:    EngineUring,
		BatchSize: 4,
		Profile:   prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	peer, err := net.DialUDP("udp", nil, s.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	huge := make([]byte, 32<<10)
	peer.Write(huge)
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	p, err := s.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) >= len(huge) {
		t.Fatalf("expected truncation, got %d bytes", len(p.Data))
	}
	s.Release(p)
	if got := prof.Counter(metrics.MetricUringRecvTrunc).Value(); got != 1 {
		t.Errorf("uring.recv_truncated = %d, want 1", got)
	}
}

// TestUringLifecycleLeaks opens and closes uring sockets and stream
// engines and asserts the completion-reaper goroutines and every ring/
// socket fd are released.
func TestUringLifecycleLeaks(t *testing.T) {
	if !UringSupported() {
		t.Skip("no io_uring")
	}
	countFDs := func() int {
		ents, err := os.ReadDir("/proc/self/fd")
		if err != nil {
			t.Fatal(err)
		}
		return len(ents)
	}
	beforeGo := runtime.NumGoroutine()
	beforeFD := countFDs()
	for i := 0; i < 3; i++ {
		s, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{Engine: EngineUring, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		peer, err := net.DialUDP("udp", nil, s.LocalAddr())
		if err != nil {
			t.Fatal(err)
		}
		peer.Write([]byte("ping"))
		s.SetReadDeadline(time.Now().Add(time.Second))
		if p, err := s.ReadPacket(); err == nil {
			s.Release(p)
		}
		peer.Close()
		s.Close()

		eng, err := NewStreamEngine(StreamEngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := eng.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cl, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cl.Write([]byte("hello"))
		cl.Close()
		ln.Close()
		eng.Close()
	}
	testutil.CheckGoroutines(t, beforeGo)
	// Give async finalizers a moment before counting fds.
	deadline := time.Now().Add(2 * time.Second)
	for countFDs() > beforeFD && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := countFDs(); after > beforeFD {
		t.Errorf("fd count grew %d -> %d", beforeFD, after)
	}
}

// TestUringProbeStatus always passes and always logs the probe verdict.
// CI runs it with -v so a kernel or seccomp denial appears as an explicit
// log line in the job output instead of a pile of silent skips.
func TestUringProbeStatus(t *testing.T) {
	ok, feat, reason := UringProbeInfo()
	if ok {
		t.Logf("io_uring available: features=0x%x", feat)
	} else {
		t.Logf("io_uring DENIED on this kernel (%s): engine parity covers portable+batch only", reason)
	}
}
