package transport

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"io"
	"math/big"
	"net"
	"runtime"
	"testing"
	"time"

	"gosip/internal/metrics"
)

// newTLSPair builds a server context and a client context sharing one
// runtime self-signed certificate, the proxy/phone-fleet arrangement.
func newTLSPair(t testing.TB, srvOpts, cliOpts TLSOptions) (*TLSContext, *TLSContext) {
	t.Helper()
	if len(srvOpts.Cert.Certificate) == 0 {
		cert, pool, err := GenerateSelfSigned("tls.test")
		if err != nil {
			t.Fatalf("GenerateSelfSigned: %v", err)
		}
		srvOpts.Cert = cert
		cliOpts.Cert = cert
		if cliOpts.RootCAs == nil && !cliOpts.InsecureSkipVerify {
			cliOpts.RootCAs = pool
		}
	}
	srv, err := NewTLSContext(srvOpts)
	if err != nil {
		t.Fatalf("server context: %v", err)
	}
	cli, err := NewTLSContext(cliOpts)
	if err != nil {
		t.Fatalf("client context: %v", err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return srv, cli
}

// serveTLS accepts connections, completes their handshakes, and discards
// inbound bytes until the listener closes.
func serveTLS(t testing.TB, srv *TLSContext) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				tc := srv.Server(nc)
				if _, err := srv.Handshake(tc); err != nil {
					return
				}
				// One-byte greeting: session tickets are post-handshake
				// messages in TLS 1.3, and the client only processes them
				// while reading — give it something to read.
				if _, err := tc.Write([]byte{'k'}); err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, tc)
			}()
		}
	}()
	return ln
}

// dialSettled dials and reads the server greeting, which forces the client
// to process any NewSessionTicket messages into its session cache.
func dialSettled(t testing.TB, cli *TLSContext, addr string) *tls.Conn {
	t.Helper()
	c, err := cli.DialAddr(addr, time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.Read(make([]byte, 1)); err != nil {
		c.Close()
		t.Fatalf("greeting read: %v", err)
	}
	return c
}

func TestTLSResumption(t *testing.T) {
	srvProf, cliProf := metrics.NewProfile(), metrics.NewProfile()
	srv, cli := newTLSPair(t,
		TLSOptions{Profile: srvProf},
		TLSOptions{Resume: true, Profile: cliProf})
	ln := serveTLS(t, srv)

	// First dial: no ticket yet — a full handshake on both sides.
	c1 := dialSettled(t, cli, ln.Addr().String())
	if c1.ConnectionState().DidResume {
		t.Error("first handshake resumed with an empty session cache")
	}
	c1.Close()

	// Second dial: the cached ticket must resume.
	c2 := dialSettled(t, cli, ln.Addr().String())
	if !c2.ConnectionState().DidResume {
		t.Error("second handshake did not resume")
	}
	c2.Close()

	if full := cliProf.Counter(metrics.MetricTLSFullHandshakes).Value(); full != 1 {
		t.Errorf("client full handshakes = %d, want 1", full)
	}
	if res := cliProf.Counter(metrics.MetricTLSResumptions).Value(); res != 1 {
		t.Errorf("client resumptions = %d, want 1", res)
	}
	if res := srvProf.Counter(metrics.MetricTLSResumptions).Value(); res != 1 {
		t.Errorf("server resumptions = %d, want 1", res)
	}
	if hs := cliProf.Histogram(metrics.StageHandshake).Snapshot(); hs.Count != 2 {
		t.Errorf("handshake histogram count = %d, want 2", hs.Count)
	}
}

func TestTLSResumptionDisabledMisses(t *testing.T) {
	cliProf := metrics.NewProfile()
	srv, cli := newTLSPair(t, TLSOptions{}, TLSOptions{Profile: cliProf})
	ln := serveTLS(t, srv)
	for i := 0; i < 2; i++ {
		c, err := cli.DialAddr(ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if c.ConnectionState().DidResume {
			t.Errorf("dial %d resumed without a session cache", i)
		}
		c.Close()
	}
	if full := cliProf.Counter(metrics.MetricTLSFullHandshakes).Value(); full != 2 {
		t.Errorf("full handshakes = %d, want 2", full)
	}
	if res := cliProf.Counter(metrics.MetricTLSResumptions).Value(); res != 0 {
		t.Errorf("resumptions = %d, want 0", res)
	}
	if cli.ResumptionArmed() {
		t.Error("ResumptionArmed without Resume")
	}
}

func TestTLSBadCertificateFails(t *testing.T) {
	before := runtime.NumGoroutine()
	cliProf := metrics.NewProfile()
	// The client verifies against a root pool that does NOT contain the
	// server's self-signed certificate.
	_, otherPool, err := GenerateSelfSigned("other.test")
	if err != nil {
		t.Fatalf("GenerateSelfSigned: %v", err)
	}
	srv, cli := newTLSPair(t,
		TLSOptions{},
		TLSOptions{RootCAs: otherPool, Profile: cliProf})
	ln := serveTLS(t, srv)

	if _, err := cli.DialAddr(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("dial succeeded against an untrusted certificate")
	}
	if fails := cliProf.Counter(metrics.MetricTLSHandshakeFailures).Value(); fails != 1 {
		t.Errorf("handshake failures = %d, want 1", fails)
	}
	// The failed dial must not leave its connection goroutines behind.
	ln.Close()
	if delta := settle(before); delta > 0 {
		t.Errorf("%d goroutine(s) leaked after failed handshake", delta)
	}
}

func TestTLSHandshakeTimeout(t *testing.T) {
	cliProf := metrics.NewProfile()
	_, cli := newTLSPair(t, TLSOptions{},
		TLSOptions{InsecureSkipVerify: true, HandshakeTimeout: 50 * time.Millisecond, Profile: cliProf})
	// A raw TCP listener that never speaks TLS: the client's hello goes
	// unanswered and the handshake must fail on the deadline, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // hold open, never respond
		}
	}()

	start := time.Now()
	_, err = cli.DialAddr(ln.Addr().String(), time.Second)
	if err == nil {
		t.Fatal("handshake against a mute peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("handshake failure took %v; timeout did not bound it", elapsed)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if fails := cliProf.Counter(metrics.MetricTLSHandshakeFailures).Value(); fails != 1 {
		t.Errorf("handshake failures = %d, want 1", fails)
	}
}

func TestTLSTicketRotation(t *testing.T) {
	srvProf := metrics.NewProfile()
	srv, cli := newTLSPair(t,
		TLSOptions{TicketRotate: 20 * time.Millisecond, Profile: srvProf},
		TLSOptions{Resume: true})
	ln := serveTLS(t, srv)

	c1 := dialSettled(t, cli, ln.Addr().String())
	c1.Close()

	// Wait out at least one rotation; with a 3-key history the ticket issued
	// under the previous key must still resume.
	deadline := time.Now().Add(2 * time.Second)
	for srvProf.Counter(metrics.MetricTLSTicketRotations).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no ticket rotation observed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c2 := dialSettled(t, cli, ln.Addr().String())
	if !c2.ConnectionState().DidResume {
		t.Error("ticket issued before rotation did not resume after it")
	}
	c2.Close()
}

func TestTLSContextRequiresCert(t *testing.T) {
	if _, err := NewTLSContext(TLSOptions{}); err == nil {
		t.Fatal("NewTLSContext accepted an empty certificate")
	}
}

func TestTLSNilContextNoOps(t *testing.T) {
	var tc *TLSContext
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := tc.Server(c1); got != c1 {
		t.Error("nil context Server changed the connection")
	}
	if d, err := tc.Handshake(c1); d != 0 || err != nil {
		t.Errorf("nil context Handshake = (%v, %v)", d, err)
	}
	if tc.ResumptionArmed() {
		t.Error("nil context reports resumption")
	}
	tc.Close()
}

func TestGenerateSelfSignedSANs(t *testing.T) {
	cert, pool, err := GenerateSelfSigned("san.test")
	if err != nil {
		t.Fatalf("GenerateSelfSigned: %v", err)
	}
	if cert.Leaf == nil {
		t.Fatal("certificate Leaf not parsed")
	}
	if err := cert.Leaf.VerifyHostname("127.0.0.1"); err != nil {
		t.Errorf("127.0.0.1 not covered: %v", err)
	}
	if err := cert.Leaf.VerifyHostname("localhost"); err != nil {
		t.Errorf("localhost not covered: %v", err)
	}
	if pool == nil {
		t.Fatal("nil trust pool")
	}
}

// settle polls for goroutines started since before to exit (the transport
// package cannot import testutil: testutil imports metrics which is fine,
// but keeping this local avoids a dependency for one helper).
func settle(before int) int {
	delta := 0
	for deadline := time.Now().Add(2 * time.Second); ; {
		delta = runtime.NumGoroutine() - before
		if delta <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if delta < 0 {
		delta = 0
	}
	return delta
}

// benchHandshake measures one handshake per iteration against a live
// accept loop; resume selects whether the client carries a session cache.
func benchHandshake(b *testing.B, resume bool) {
	srv, cli := newTLSPair(b, TLSOptions{}, TLSOptions{Resume: resume})
	ln := serveTLS(b, srv)
	addr := ln.Addr().String()
	if resume {
		// Prime the session cache outside the measured loop.
		dialSettled(b, cli, addr).Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The greeting read is part of each iteration for both variants: it
		// is what delivers the next single-use TLS 1.3 ticket, so it belongs
		// to the per-connection cost being amortized.
		c := dialSettled(b, cli, addr)
		if resume != c.ConnectionState().DidResume {
			b.Fatalf("DidResume = %v, want %v", c.ConnectionState().DidResume, resume)
		}
		c.Close()
	}
}

// BenchmarkTLSHandshakeFull is the per-connection price of TLS without
// amortization: a complete certificate exchange and key agreement.
func BenchmarkTLSHandshakeFull(b *testing.B) { benchHandshake(b, false) }

// BenchmarkTLSHandshakeResumed is the amortized price: a session-ticket
// resumption, which skips certificate verification and full key exchange.
func BenchmarkTLSHandshakeResumed(b *testing.B) { benchHandshake(b, true) }

// rsaSelfSigned is GenerateSelfSigned with an RSA-2048 key, for the
// benchmark that reconstructs the classic "resumption is 3×+ cheaper"
// ratio: it holds for RSA-era certificates, where the server's signature
// alone costs close to a millisecond, and shrinks to ~1.5× on the ECDSA
// P-256 certificates the production path generates.
func rsaSelfSigned(b *testing.B) (tls.Certificate, *x509.CertPool) {
	b.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		b.Fatalf("rsa key: %v", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "rsa.tls.test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:         true, BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		b.Fatalf("create certificate: %v", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		b.Fatalf("parse certificate: %v", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, pool
}

// benchHandshakeCrypto isolates the handshake's CPU cost from connection
// establishment: both sides run over an in-memory pipe, so the measured
// work is key exchange, certificate processing, and transcript HMACs —
// no TCP dial, no kernel socket crossings.
func benchHandshakeCrypto(b *testing.B, resume bool, opts ...func(*TLSOptions)) {
	srvOpts, cliOpts := TLSOptions{}, TLSOptions{Resume: resume}
	for _, o := range opts {
		o(&srvOpts)
		o(&cliOpts)
	}
	srv, cli := newTLSPair(b, srvOpts, cliOpts)
	hs := func(wantResume bool) {
		p1, p2 := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer p1.Close()
			tc := srv.Server(p1)
			if _, err := srv.Handshake(tc); err != nil {
				return
			}
			tc.Write([]byte{'k'})    // deliver the session ticket
			tc.Read(make([]byte, 1)) // block until the client is done
		}()
		c := cli.Client(p2, "127.0.0.1:0")
		if _, err := cli.Handshake(c); err != nil {
			b.Fatalf("handshake: %v", err)
		}
		if wantResume != c.ConnectionState().DidResume {
			b.Fatalf("DidResume = %v, want %v", c.ConnectionState().DidResume, wantResume)
		}
		c.Read(make([]byte, 1)) // process NewSessionTicket
		// Close the raw pipe rather than the TLS conn: close_notify would
		// rendezvous-deadlock on a synchronous in-memory pipe.
		p2.Close()
		<-done
	}
	if resume {
		hs(false) // prime the session cache: the first handshake is full
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs(resume)
	}
}

// BenchmarkTLSHandshakeCryptoFull / CryptoResumed separate the handshake's
// compute from the socket round-trips the end-to-end pair above includes.
func BenchmarkTLSHandshakeCryptoFull(b *testing.B)    { benchHandshakeCrypto(b, false) }
func BenchmarkTLSHandshakeCryptoResumed(b *testing.B) { benchHandshakeCrypto(b, true) }

// The RSA-2048 variants: what resumption buys when the certificate's
// signature is the expensive part — the regime the classic "resumed is
// several times cheaper" rule of thumb comes from.
func BenchmarkTLSHandshakeCryptoFullRSA(b *testing.B) {
	cert, pool := rsaSelfSigned(b)
	benchHandshakeCrypto(b, false, func(o *TLSOptions) { o.Cert = cert; o.RootCAs = pool })
}

func BenchmarkTLSHandshakeCryptoResumedRSA(b *testing.B) {
	cert, pool := rsaSelfSigned(b)
	benchHandshakeCrypto(b, true, func(o *TLSOptions) { o.Cert = cert; o.RootCAs = pool })
}

// BenchmarkTLSRecordThroughput measures steady-state record-layer cost:
// bytes pushed through an established TLS connection, the component that
// remains after handshake amortization.
func BenchmarkTLSRecordThroughput(b *testing.B) {
	srv, cli := newTLSPair(b, TLSOptions{}, TLSOptions{Resume: true})
	ln := serveTLS(b, srv)
	c, err := cli.DialAddr(ln.Addr().String(), time.Second)
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	defer c.Close()
	buf := make([]byte, 1024) // one SIP-message-sized record
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatalf("write: %v", err)
		}
	}
}
