package transport

import (
	"io"
	"net"
	"testing"
	"time"

	"gosip/internal/metrics"
)

// The batch benchmarks pair a socket with itself over loopback: each
// iteration moves one datagram out and back in, so ns/op is per datagram
// regardless of the batch size, and the profile counters turn into a
// syscalls/op metric benchstat can track alongside it.

func benchSyscallsPerOp(b *testing.B, prof *metrics.Profile, ops int) {
	b.Helper()
	sys := prof.Counter(metrics.MetricUDPRecvSyscalls).Value() +
		prof.Counter(metrics.MetricUDPSendSyscalls).Value()
	b.ReportMetric(float64(sys)/float64(ops), "syscalls/op")
	if dropped := prof.Counter(metrics.MetricUDPPoolDropped).Value(); dropped != 0 {
		b.Fatalf("pool dropped %d buffers", dropped)
	}
}

func benchUDPRoundtrip(b *testing.B, batch int) {
	prof := metrics.NewProfile()
	sock, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{
		BatchSize: batch,
		RcvBuf:    1 << 20,
		Profile:   prof,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sock.Close()
	dst := sock.LocalAddr()

	wire := testMsg(1).Serialize()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()

	if batch <= 1 {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sock.WriteTo(wire, dst); err != nil {
				b.Fatal(err)
			}
			pkt, err := sock.ReadPacket()
			if err != nil {
				b.Fatal(err)
			}
			sock.Release(pkt)
		}
		b.StopTimer()
		benchSyscallsPerOp(b, prof, b.N)
		return
	}

	bw := sock.NewBatchWriter(batch)
	br := sock.NewBatchReader(batch)
	dgs := make([]Datagram, batch)
	for i := range dgs {
		dgs[i] = Datagram{Data: wire, Dst: dst}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		k := batch
		if rem := b.N - i; rem < k {
			k = rem
		}
		if err := sock.WriteBatch(bw, dgs[:k]); err != nil {
			b.Fatal(err)
		}
		for got := 0; got < k; {
			n, err := sock.ReadBatch(br)
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
	b.StopTimer()
	benchSyscallsPerOp(b, prof, b.N)
}

func BenchmarkUDPRoundtrip(b *testing.B)        { benchUDPRoundtrip(b, 1) }
func BenchmarkUDPRoundtripBatch8(b *testing.B)  { benchUDPRoundtrip(b, 8) }
func BenchmarkUDPRoundtripBatch32(b *testing.B) { benchUDPRoundtrip(b, 32) }

// benchStreamWrite measures contended sends on one StreamConn: several
// goroutines (more than GOMAXPROCS, so they genuinely queue on the write
// path) push a response-sized payload each iteration while a peer drains.
// With coalescing on, blocked writers hand their payloads to the flusher
// and write calls drop below message count.
func benchStreamWrite(b *testing.B, coalesce bool) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()
	client, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	peer := <-accepted
	defer peer.Close()
	go io.Copy(io.Discard, peer)

	prof := metrics.NewProfile()
	sc := NewStreamConn(client)
	sc.InstrumentWrites(prof.Counter(metrics.MetricTCPWriteCalls), prof.Counter(metrics.MetricTCPWriteMsgs))
	if coalesce {
		sc.EnableCoalesce()
	}

	wire := testMsg(1).Serialize()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := sc.WriteRaw(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	calls := prof.Counter(metrics.MetricTCPWriteCalls).Value()
	msgs := prof.Counter(metrics.MetricTCPWriteMsgs).Value()
	b.ReportMetric(float64(calls)/float64(msgs), "syscalls/op")
}

func BenchmarkStreamWriteContended(b *testing.B)          { benchStreamWrite(b, false) }
func BenchmarkStreamWriteContendedCoalesced(b *testing.B) { benchStreamWrite(b, true) }

// BenchmarkEgressEnqueue is the proxy's batched send path: enqueue into
// the worker egress and drain, as one receive batch's worth of responses
// would. The reader side drains the socket so the benchmark measures the
// sender, not a filling rcvbuf.
func BenchmarkEgressEnqueue(b *testing.B) {
	prof := metrics.NewProfile()
	sock, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{
		BatchSize: 32, RcvBuf: 1 << 20, Profile: prof,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sock.Close()
	sink, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{RcvBuf: 1 << 22})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			pkt, err := sink.ReadPacket()
			if err != nil {
				return
			}
			sink.Release(pkt)
		}
	}()

	eg := NewEgress(sock, 32, DefaultEgressLinger, prof)
	defer eg.Close()
	wire := testMsg(1).Serialize()
	dst := sink.LocalAddr()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eg.Enqueue(wire, dst); err != nil {
			b.Fatal(err)
		}
		if i%8 == 7 {
			eg.Drain()
		}
	}
	eg.Drain()
	b.StopTimer()
	b.ReportMetric(float64(prof.Counter(metrics.MetricUDPSendSyscalls).Value())/float64(b.N), "syscalls/op")
}
