//go:build linux && amd64

package transport

// sysSENDMMSG is SYS_SENDMMSG, absent from the frozen syscall package
// (the call entered Linux 3.0, after the table was generated).
const sysSENDMMSG = 307
