package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"gosip/internal/sipmsg"
)

func testMsg(i int) *sipmsg.Message {
	return sipmsg.NewRequest(sipmsg.RequestSpec{
		Method:     sipmsg.OPTIONS,
		RequestURI: sipmsg.URI{Host: "test.local"},
		From:       sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "x"}, Params: map[string]string{"tag": "t"}},
		To:         sipmsg.NameAddr{URI: sipmsg.URI{User: "b", Host: "y"}},
		CallID:     sipmsg.NewCallID("x"),
		CSeq:       uint32(i + 1),
		Via:        sipmsg.Via{Transport: "UDP", Host: "x", Port: 5060},
	})
}

func TestUDPRoundTrip(t *testing.T) {
	srv, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	want := testMsg(1).Serialize()
	if err := cli.WriteTo(want, srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	pkt, err := srv.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt.Data) != string(want) {
		t.Error("payload mismatch")
	}
	if pkt.Src.Port != cli.LocalAddr().Port {
		t.Errorf("src = %v, want port %d", pkt.Src, cli.LocalAddr().Port)
	}
	srv.Release(pkt)
}

func TestUDPConcurrentReaders(t *testing.T) {
	// The burst below is one rcvbuf's worth of datagrams; with the default
	// 208K buffer the test sits at the kernel's drop threshold whenever the
	// sender outruns the readers (single-CPU machines). An explicit receive
	// buffer keeps the assertion about delivery, not about scheduling luck.
	srv, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{RcvBuf: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers, msgs = 4, 200
	var got sync.Map
	var wg sync.WaitGroup
	var received sync.WaitGroup
	received.Add(msgs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pkt, err := srv.ReadPacket()
				if err != nil {
					return
				}
				m, perr := sipmsg.Parse(pkt.Data)
				srv.Release(pkt)
				if perr != nil {
					t.Errorf("parse: %v", perr)
				} else {
					if _, loaded := got.LoadOrStore(m.CallID(), true); loaded {
						t.Errorf("duplicate delivery of %s", m.CallID())
					}
				}
				received.Done()
			}
		}()
	}
	for i := 0; i < msgs; i++ {
		if err := cli.WriteTo(testMsg(i).Serialize(), srv.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { received.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for datagrams (loopback should not drop at this rate)")
	}
	srv.Close()
	wg.Wait()
}

func TestStreamConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		sc := NewStreamConn(c)
		defer sc.Close()
		for i := 0; i < 10; i++ {
			m, err := sc.ReadMessage()
			if err != nil {
				done <- err
				return
			}
			// Echo a response.
			if err := sc.WriteMessage(sipmsg.NewResponse(m, sipmsg.StatusOK, "tag")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if err := cli.WriteMessage(testMsg(i)); err != nil {
			t.Fatal(err)
		}
		resp, err := cli.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != sipmsg.StatusOK {
			t.Errorf("status = %d", resp.StatusCode)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestStreamConnConcurrentWriters(t *testing.T) {
	// Many goroutines writing one connection must not interleave messages —
	// the invariant OpenSER maintains with user-level locks on shared
	// connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const writers, per = 8, 50
	errc := make(chan error, 1)
	countc := make(chan int, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		sc := NewStreamConn(c)
		n := 0
		for n < writers*per {
			if _, err := sc.ReadMessage(); err != nil {
				errc <- err
				countc <- n
				return
			}
			n++
		}
		errc <- nil
		countc <- n
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := cli.WriteMessage(testMsg(w*per + i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("reader failed after %d messages: %v", <-countc, err)
	}
	if got := <-countc; got != writers*per {
		t.Errorf("read %d messages, want %d", got, writers*per)
	}
	cli.Close()
}

func TestStreamConnReadDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			defer c.Close()
			time.Sleep(500 * time.Millisecond)
		}
	}()
	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := cli.ReadMessage(); err == nil {
		t.Error("expected deadline error")
	}
}

func TestListenUDPBadAddr(t *testing.T) {
	if _, err := ListenUDP("not-an-addr:x:y"); err == nil {
		t.Error("bad addr accepted")
	}
}

func TestDialTCPRefused(t *testing.T) {
	// Port 1 on loopback is almost certainly closed.
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Skip("port 1 unexpectedly open")
	}
}

func TestStreamConnLargeMessage(t *testing.T) {
	// A message with a large body must survive framing across many reads.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	body := make([]byte, 48<<10)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		sc := NewStreamConn(c)
		defer sc.Close()
		m, err := sc.ReadMessage()
		if err != nil {
			done <- err
			return
		}
		if len(m.Body) != len(body) {
			t.Errorf("body length %d, want %d", len(m.Body), len(body))
		}
		done <- nil
	}()
	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	m := testMsg(0)
	m.Body = body
	if err := cli.WriteMessage(m); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUDPReadDeadline(t *testing.T) {
	s, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	if _, err := s.ReadPacket(); err == nil {
		t.Fatal("expected deadline error")
	}
	if time.Since(start) > time.Second {
		t.Error("deadline not honored promptly")
	}
}

func TestUDPOversizeDatagramTruncationSafe(t *testing.T) {
	// Payloads beyond MaxDatagram cannot be sent on loopback anyway, but a
	// full-size one must round-trip unharmed.
	srv, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	payload := make([]byte, 32<<10)
	if err := cli.WriteTo(payload, srv.LocalAddr()); err != nil {
		t.Skipf("kernel rejected large datagram: %v", err)
	}
	pkt, err := srv.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt.Data) != len(payload) {
		t.Errorf("got %d bytes, want %d", len(pkt.Data), len(payload))
	}
	srv.Release(pkt)
}
