//go:build linux && (amd64 || arm64)

// io_uring ring core, on raw syscalls so the module stays dependency-free
// (no golang.org/x/sys, no liburing). The three syscalls — io_uring_setup,
// io_uring_enter, io_uring_register — share numbers on linux/amd64 and
// linux/arm64, and every ring structure is fixed-layout little-endian, so
// one build tag covers both targets exactly like batch_linux.go.
//
// The model: userspace writes submission queue entries (SQEs) into a
// mmap'd ring and publishes them with one atomic tail store; a single
// io_uring_enter submits the whole batch. Completions (CQEs) appear in a
// second mmap'd ring; a dedicated reaper goroutine blocks in
// io_uring_enter(GETEVENTS) and dispatches them. Multishot operations
// (RECVMSG, RECV, ACCEPT) complete many times from one SQE, so a
// steady-state receive path costs no submissions at all — the wait syscall
// amortizes over every completion the wakeup carries.
//
// Ingress payloads land in registered buffer rings (IORING_REGISTER_
// PBUF_RING): the kernel picks a buffer per completion and reports its id
// in the CQE; consumers hand ids back by advancing the buffer ring tail —
// a userspace-only operation. Running the ring dry terminates the
// multishot with ENOBUFS; the owner rearms it once consumers return
// buffers (counted, never silent).

package transport

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"gosip/internal/metrics"
)

// Syscall numbers (identical on amd64 and arm64).
const (
	sysIoUringSetup    = 425
	sysIoUringEnter    = 426
	sysIoUringRegister = 427
)

// io_uring_setup flags and features.
const (
	uringSetupClamp  = 1 << 4 // IORING_SETUP_CLAMP
	uringSetupCQSize = 1 << 3 // IORING_SETUP_CQSIZE

	uringFeatSingleMmap = 1 << 0 // IORING_FEAT_SINGLE_MMAP
	uringFeatNoDrop     = 1 << 1 // IORING_FEAT_NODROP
)

// io_uring_enter flags.
const uringEnterGetevents = 1 << 0

// Ring mmap offsets.
const (
	uringOffSQRing = 0
	uringOffCQRing = 0x8000000
	uringOffSQEs   = 0x10000000
)

// Opcodes used by the engine.
const (
	opNop         = 0
	opSendmsg     = 9
	opRecvmsg     = 10
	opAccept      = 13
	opAsyncCancel = 14
	opRecv        = 27
)

// Per-opcode SQE modifier flags.
const (
	sqeFlagBufferSelect = 1 << 5 // IOSQE_BUFFER_SELECT

	recvMultishot   = 1 << 1 // IORING_RECV_MULTISHOT (sqe.ioprio)
	acceptMultishot = 1 << 0 // IORING_ACCEPT_MULTISHOT (sqe.ioprio)
)

// CQE flags.
const (
	cqeFBuffer = 1 << 0 // IORING_CQE_F_BUFFER: bid in flags>>16
	cqeFMore   = 1 << 1 // IORING_CQE_F_MORE: multishot still armed
)

// io_uring_register opcodes.
const (
	uringRegisterPbufRing   = 22
	uringUnregisterPbufRing = 23
)

type sqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFd         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

// uringSQE is struct io_uring_sqe (64 bytes). Union fields carry the name
// of the member this engine uses.
type uringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64 // addr2 union
	addr        uint64
	len         uint32
	opFlags     uint32 // msg_flags / accept_flags / cancel_flags
	userData    uint64
	bufGroup    uint16 // buf_index union
	personality uint16
	spliceFdIn  int32
	_           [2]uint64
}

// uringCQE is struct io_uring_cqe (16 bytes).
type uringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

// uringBuf is struct io_uring_buf, one entry of a registered buffer ring.
// The u16 at offset 14 of entry 0 doubles as the ring's shared tail.
type uringBuf struct {
	addr uint64
	len  uint32
	bid  uint16
	resv uint16
}

type uringBufReg struct {
	ringAddr    uint64
	ringEntries uint32
	bgid        uint16
	flags       uint16
	resv        [3]uint64
}

func ioUringSetup(entries uint32, p *uringParams) (int, error) {
	fd, _, errno := syscall.Syscall(sysIoUringSetup, uintptr(entries), uintptr(unsafe.Pointer(p)), 0)
	if errno != 0 {
		return -1, os.NewSyscallError("io_uring_setup", errno)
	}
	return int(fd), nil
}

func ioUringEnter(fd int, toSubmit, minComplete, flags uint32) (int, syscall.Errno) {
	r1, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(fd),
		uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
	return int(r1), errno
}

func ioUringRegister(fd int, opcode uint32, arg unsafe.Pointer, nrArgs uint32) syscall.Errno {
	_, _, errno := syscall.Syscall6(sysIoUringRegister, uintptr(fd),
		uintptr(opcode), uintptr(arg), uintptr(nrArgs), 0, 0)
	return errno
}

// uringCounters is the instrumentation every ring carries (nil-safe).
type uringCounters struct {
	submits   *metrics.Counter
	sqes      *metrics.Counter
	waits     *metrics.Counter
	cqes      *metrics.Counter
	overflows *metrics.Counter
	sqBatch   *metrics.Histogram
	cqBatch   *metrics.Histogram
}

func newUringCounters(p *metrics.Profile) uringCounters {
	var c uringCounters
	if p != nil {
		c.submits = p.Counter(metrics.MetricUringSubmits)
		c.sqes = p.Counter(metrics.MetricUringSQEs)
		c.waits = p.Counter(metrics.MetricUringWaits)
		c.cqes = p.Counter(metrics.MetricUringCQEs)
		c.overflows = p.Counter(metrics.MetricUringCQOverflows)
		c.sqBatch = p.Histogram(metrics.HistUringSQBatch)
		c.cqBatch = p.Histogram(metrics.HistUringCQBatch)
	}
	return c
}

// uringRing owns one io_uring instance: the fd, the three mmap regions,
// and the submit lock. One goroutine (the owner's reaper) consumes the CQ;
// any goroutine may submit under submitMu.
type uringRing struct {
	fd       int
	features uint32

	sqMem, cqMem, sqeMem []byte

	sqHead, sqTail *uint32
	sqMask         uint32
	sqArray        []uint32
	sqes           []uringSQE

	cqHead, cqTail, cqOverflow *uint32
	cqMask                     uint32
	cqRing                     []uringCQE

	submitMu sync.Mutex
	sqLocal  uint32 // next SQE index (tail not yet published)
	sqPend   uint32 // filled-but-unsubmitted SQE count

	lastOverflow uint32
	ctr          uringCounters

	closed     atomic.Bool
	reaperDone chan struct{}

	bufRings []*uringBufRing // owned registered buffer rings, for cleanup
}

// newUringRing sets up a ring with sqEntries submission slots and a CQ
// four times as deep (completions outpace submissions under multishot).
func newUringRing(sqEntries uint32, ctr uringCounters) (*uringRing, error) {
	if sqEntries == 0 {
		sqEntries = 256
	}
	p := uringParams{flags: uringSetupClamp | uringSetupCQSize, cqEntries: sqEntries * 4}
	fd, err := ioUringSetup(sqEntries, &p)
	if err != nil {
		return nil, err
	}
	r := &uringRing{fd: fd, features: p.features, ctr: ctr, reaperDone: make(chan struct{})}

	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*16
	if p.features&uringFeatSingleMmap != 0 && cqSize > sqSize {
		sqSize = cqSize
	}
	r.sqMem, err = syscall.Mmap(fd, uringOffSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("transport: mmap sq ring: %w", err)
	}
	if p.features&uringFeatSingleMmap != 0 {
		r.cqMem = r.sqMem
	} else {
		r.cqMem, err = syscall.Mmap(fd, uringOffCQRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			syscall.Munmap(r.sqMem)
			syscall.Close(fd)
			return nil, fmt.Errorf("transport: mmap cq ring: %w", err)
		}
	}
	r.sqeMem, err = syscall.Mmap(fd, uringOffSQEs, int(p.sqEntries)*64,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		r.unmap()
		syscall.Close(fd)
		return nil, fmt.Errorf("transport: mmap sqes: %w", err)
	}

	sq := r.sqMem
	r.sqHead = (*uint32)(unsafe.Pointer(&sq[p.sqOff.head]))
	r.sqTail = (*uint32)(unsafe.Pointer(&sq[p.sqOff.tail]))
	r.sqMask = *(*uint32)(unsafe.Pointer(&sq[p.sqOff.ringMask]))
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&sq[p.sqOff.array])), p.sqEntries)
	r.sqes = unsafe.Slice((*uringSQE)(unsafe.Pointer(&r.sqeMem[0])), p.sqEntries)

	cq := r.cqMem
	r.cqHead = (*uint32)(unsafe.Pointer(&cq[p.cqOff.head]))
	r.cqTail = (*uint32)(unsafe.Pointer(&cq[p.cqOff.tail]))
	r.cqOverflow = (*uint32)(unsafe.Pointer(&cq[p.cqOff.overflow]))
	r.cqMask = *(*uint32)(unsafe.Pointer(&cq[p.cqOff.ringMask]))
	r.cqRing = unsafe.Slice((*uringCQE)(unsafe.Pointer(&cq[p.cqOff.cqes])), p.cqEntries)

	// The SQ array never changes: identity-map slot i → SQE i.
	for i := range r.sqArray {
		r.sqArray[i] = uint32(i)
	}
	r.sqLocal = *r.sqTail
	return r, nil
}

func (r *uringRing) unmap() {
	if r.sqeMem != nil {
		syscall.Munmap(r.sqeMem)
		r.sqeMem = nil
	}
	if r.cqMem != nil && len(r.cqMem) > 0 && &r.cqMem[0] != &r.sqMem[0] {
		syscall.Munmap(r.cqMem)
	}
	r.cqMem = nil
	if r.sqMem != nil {
		syscall.Munmap(r.sqMem)
		r.sqMem = nil
	}
}

// getSQE returns the next free SQE, zeroed. submitMu must be held; if the
// ring is full the pending batch is flushed first (after which the kernel
// has consumed every published entry and the ring is empty again).
func (r *uringRing) getSQE() (*uringSQE, error) {
	if r.sqPend >= uint32(len(r.sqes)) {
		if err := r.flushLocked(); err != nil {
			return nil, err
		}
	}
	sqe := &r.sqes[r.sqLocal&r.sqMask]
	*sqe = uringSQE{}
	r.sqLocal++
	r.sqPend++
	return sqe, nil
}

// flushLocked publishes and submits every pending SQE with one
// io_uring_enter (more if the kernel accepts the batch partially).
// submitMu must be held.
func (r *uringRing) flushLocked() error {
	n := r.sqPend
	if n == 0 {
		return nil
	}
	atomic.StoreUint32(r.sqTail, r.sqLocal)
	remaining := n
	for remaining > 0 {
		done, errno := ioUringEnter(r.fd, remaining, 0, 0)
		switch errno {
		case 0:
		case syscall.EINTR:
			continue
		case syscall.EBUSY:
			// CQ backlogged (NODROP overflow list in play): ask the kernel
			// to flush completions into the ring, then retry.
			r.ctr.submits.Inc()
			ioUringEnter(r.fd, 0, 0, uringEnterGetevents)
			continue
		default:
			r.sqPend = 0
			return os.NewSyscallError("io_uring_enter", errno)
		}
		r.ctr.submits.Inc()
		remaining -= uint32(done)
	}
	r.ctr.sqes.Add(int64(n))
	r.ctr.sqBatch.Record(time.Duration(n))
	r.sqPend = 0
	return nil
}

// submit runs fill (which may call getSQE any number of times) and flushes
// the batch: the engine's one entry point for submissions.
func (r *uringRing) submit(fill func() error) error {
	r.submitMu.Lock()
	defer r.submitMu.Unlock()
	if err := fill(); err != nil {
		return err
	}
	return r.flushLocked()
}

// reap drains available CQEs into handle and returns how many it saw. Only
// the reaper goroutine calls this.
func (r *uringRing) reap(handle func(uringCQE)) int {
	head := atomic.LoadUint32(r.cqHead)
	tail := atomic.LoadUint32(r.cqTail)
	n := 0
	for head != tail {
		cqe := r.cqRing[head&r.cqMask]
		head++
		n++
		// Publish before dispatching: handlers may submit, and submission
		// can need free CQ slots (EBUSY flush) — holding the whole batch
		// back would livelock a full ring.
		atomic.StoreUint32(r.cqHead, head)
		handle(cqe)
	}
	if n > 0 {
		r.ctr.cqes.Add(int64(n))
		r.ctr.cqBatch.Record(time.Duration(n))
	}
	if of := atomic.LoadUint32(r.cqOverflow); of != r.lastOverflow {
		r.ctr.overflows.Add(int64(of - r.lastOverflow))
		r.lastOverflow = of
	}
	return n
}

// runReaper is the ring's completion loop: drain, then block in one
// GETEVENTS enter for the next batch. onWait (nil-safe) observes each wait
// syscall so the owner can fold it into its syscalls/op accounting.
func (r *uringRing) runReaper(handle func(uringCQE), onWait func()) {
	defer close(r.reaperDone)
	for {
		n := r.reap(handle)
		if r.closed.Load() {
			// One final drain so no completion is lost, then exit.
			r.reap(handle)
			return
		}
		if n > 0 {
			continue
		}
		r.ctr.waits.Inc()
		if onWait != nil {
			onWait()
		}
		_, errno := ioUringEnter(r.fd, 0, 1, uringEnterGetevents)
		if errno != 0 && errno != syscall.EINTR && errno != syscall.EBUSY && errno != syscall.ETIME {
			// The ring is unusable (fd closed under us, or worse). Drain
			// what's visible and stop.
			r.reap(handle)
			return
		}
	}
}

// wake submits a NOP so a reaper blocked in GETEVENTS sees a completion.
func (r *uringRing) wake() {
	r.submit(func() error {
		sqe, err := r.getSQE()
		if err != nil {
			return err
		}
		sqe.opcode = opNop
		sqe.userData = udNop
		return nil
	})
}

// close tears the ring down: signal the reaper, wake it, join it, then
// unregister buffer rings and release the mmaps and fd.
func (r *uringRing) close() {
	if r.closed.Swap(true) {
		return
	}
	r.wake()
	<-r.reaperDone
	for _, br := range r.bufRings {
		reg := uringBufReg{bgid: br.bgid}
		ioUringRegister(r.fd, uringUnregisterPbufRing, unsafe.Pointer(&reg), 1)
		br.unmap()
	}
	r.unmap()
	syscall.Close(r.fd)
}

// uringBufRing is one registered provided-buffer ring plus the slab its
// entries point into. Single producer: the owner pushes ids back under its
// own lock; the kernel is the only consumer.
type uringBufRing struct {
	bgid    uint16
	entries uint32
	bufSize int
	ringMem []byte
	slab    []byte
	tail    uint16
}

// newBufRing registers a buffer ring of n (rounded up to a power of two)
// buffers of bufSize bytes under group id bgid, initially full.
func (r *uringRing) newBufRing(bgid uint16, n uint32, bufSize int) (*uringBufRing, error) {
	entries := uint32(1)
	for entries < n {
		entries <<= 1
	}
	ringMem, err := syscall.Mmap(-1, 0, int(entries)*16,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("transport: mmap buffer ring: %w", err)
	}
	slab, err := syscall.Mmap(-1, 0, int(entries)*bufSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		syscall.Munmap(ringMem)
		return nil, fmt.Errorf("transport: mmap buffer slab: %w", err)
	}
	b := &uringBufRing{bgid: bgid, entries: entries, bufSize: bufSize, ringMem: ringMem, slab: slab}
	reg := uringBufReg{
		ringAddr:    uint64(uintptr(unsafe.Pointer(&ringMem[0]))),
		ringEntries: entries,
		bgid:        bgid,
	}
	if errno := ioUringRegister(r.fd, uringRegisterPbufRing, unsafe.Pointer(&reg), 1); errno != 0 {
		b.unmap()
		return nil, os.NewSyscallError("io_uring_register(PBUF_RING)", errno)
	}
	for bid := uint32(0); bid < entries; bid++ {
		b.push(uint16(bid))
	}
	r.bufRings = append(r.bufRings, b)
	return b, nil
}

func (b *uringBufRing) unmap() {
	if b.slab != nil {
		syscall.Munmap(b.slab)
		b.slab = nil
	}
	if b.ringMem != nil {
		syscall.Munmap(b.ringMem)
		b.ringMem = nil
	}
}

// buf returns the slab slice behind a buffer id.
func (b *uringBufRing) buf(bid uint16) []byte {
	off := int(bid) * b.bufSize
	return b.slab[off : off+b.bufSize]
}

// push hands a buffer id back to the kernel. The caller serializes pushes
// (the owner's queue lock); the tail publish is a release store.
func (b *uringBufRing) push(bid uint16) {
	idx := uint32(b.tail) & (b.entries - 1)
	e := (*uringBuf)(unsafe.Pointer(&b.ringMem[idx*16]))
	e.addr = uint64(uintptr(unsafe.Pointer(&b.slab[int(bid)*b.bufSize])))
	e.len = uint32(b.bufSize)
	e.bid = bid
	b.tail++
	// The shared tail is the u16 at offset 14, overlapping entry 0's resv
	// field. Go's atomics are 32-bit at minimum, so publish with a 32-bit
	// store at offset 12 that preserves entry 0's bid in the low half.
	lo := uint32(b.ringMem[12]) | uint32(b.ringMem[13])<<8
	atomic.StoreUint32((*uint32)(unsafe.Pointer(&b.ringMem[12])), lo|uint32(b.tail)<<16)
}

// userData tags: high byte selects the completion class, low bits carry
// the object id (buffer-less NOPs carry none).
const (
	udTagNop        = 0x01
	udTagUDPRecv    = 0x02
	udTagUDPSend    = 0x03
	udTagStreamRecv = 0x04
	udTagStreamSend = 0x05
	udTagAccept     = 0x06
	udTagCancel     = 0x07
)

const udNop = uint64(udTagNop) << 56

func udFor(tag uint8, id uint32) uint64 { return uint64(tag)<<56 | uint64(id) }
func udTag(ud uint64) uint8             { return uint8(ud >> 56) }
func udID(ud uint64) uint32             { return uint32(ud) }

// --- startup probe -----------------------------------------------------

var (
	uringProbeOnce     sync.Once
	uringProbeOK       bool
	uringProbeFeatures uint32
	uringProbeReason   string

	uringForceDenied atomic.Bool
)

func setUringForceDenied(v bool) bool { return uringForceDenied.Swap(v) }

// uringProbeInfo attempts io_uring_setup once per process and checks for
// the features this engine needs: buffer-ring registration and a kernel
// new enough to run multishot receive (features bitmap ≥ NODROP|...,
// proxied by a successful PBUF_RING registration, which appeared after
// multishot). Failure of any step degrades the engine to batch.
func uringProbeInfo() (bool, uint32, string) {
	uringProbeOnce.Do(func() {
		var p uringParams
		p.flags = uringSetupClamp
		fd, err := ioUringSetup(8, &p)
		if err != nil {
			uringProbeReason = fmt.Sprintf("io_uring_setup: %v", err)
			return
		}
		defer syscall.Close(fd)
		uringProbeFeatures = p.features
		// Register (and immediately drop) a tiny buffer ring: kernels with
		// PBUF_RING (≥ 5.19) also carry multishot recvmsg/accept.
		ringMem, err := syscall.Mmap(-1, 0, 16*16,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANON|syscall.MAP_PRIVATE)
		if err != nil {
			uringProbeReason = fmt.Sprintf("mmap: %v", err)
			return
		}
		defer syscall.Munmap(ringMem)
		reg := uringBufReg{
			ringAddr:    uint64(uintptr(unsafe.Pointer(&ringMem[0]))),
			ringEntries: 16,
			bgid:        0,
		}
		if errno := ioUringRegister(fd, uringRegisterPbufRing, unsafe.Pointer(&reg), 1); errno != 0 {
			uringProbeReason = fmt.Sprintf("buffer-ring registration unsupported: %v", errno)
			return
		}
		uringProbeOK = true
	})
	if uringForceDenied.Load() {
		return false, uringProbeFeatures, "probe force-denied (test hook)"
	}
	return uringProbeOK, uringProbeFeatures, uringProbeReason
}
