package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gosip/internal/metrics"
)

// listenBatch opens a 127.0.0.1 socket with the batched paths armed (or
// forced generic) and its own profile for counter assertions.
func listenBatch(t *testing.T, batch int, forceGeneric bool) (*UDPSocket, *metrics.Profile) {
	t.Helper()
	prof := metrics.NewProfile()
	s, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{
		BatchSize:    batch,
		ForceGeneric: forceGeneric,
		Profile:      prof,
		// Senders in these tests burst far ahead of the readers; a tuned
		// receive buffer keeps loopback loss-free so delivery asserts can
		// be exact.
		RcvBuf: 4 << 20,
		SndBuf: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, prof
}

// runBatchReceivers drains srv with `readers` goroutines using ReadBatch
// until total payloads arrive, returning the multiset of payloads.
func runBatchReceivers(t *testing.T, srv *UDPSocket, readers, batch, total int) map[string]int {
	t.Helper()
	var mu sync.Mutex
	got := make(map[string]int, total)
	n := 0
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			br := srv.NewBatchReader(batch)
			for {
				k, err := srv.ReadBatch(br)
				if err != nil {
					return
				}
				mu.Lock()
				for _, pkt := range br.Packets()[:k] {
					got[string(pkt.Data)]++
					n++
					if n == total {
						close(done)
					}
				}
				mu.Unlock()
			}
		}()
	}
	timedOut := false
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		timedOut = true
	}
	srv.Close()
	wg.Wait()
	if timedOut {
		t.Fatalf("timed out: received %d/%d datagrams", n, total)
	}
	return got
}

// TestBatchReadParity is the satellite parity test: the Linux mmsg path
// and the portable fallback must deliver identical packet streams —
// order-insensitive, loss-free — for the same concurrent send pattern.
func TestBatchReadParity(t *testing.T) {
	const senders, per, batch = 4, 150, 8
	want := make(map[string]int, senders*per)
	for s := 0; s < senders; s++ {
		for i := 0; i < per; i++ {
			want[fmt.Sprintf("parity-%d-%d", s, i)]++
		}
	}
	for _, forceGeneric := range []bool{false, true} {
		name := "mmsg"
		if forceGeneric {
			name = "generic"
		}
		t.Run(name, func(t *testing.T) {
			srv, _ := listenBatch(t, batch, forceGeneric)
			if !forceGeneric && mmsgAvailable && !srv.MmsgActive() {
				t.Fatal("mmsg path not armed on an mmsg-capable platform")
			}
			if forceGeneric && srv.MmsgActive() {
				t.Fatal("ForceGeneric did not disable the mmsg path")
			}
			dst := srv.LocalAddr()
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					cli, err := ListenUDP("127.0.0.1:0")
					if err != nil {
						t.Error(err)
						return
					}
					defer cli.Close()
					for i := 0; i < per; i++ {
						if err := cli.WriteTo([]byte(fmt.Sprintf("parity-%d-%d", s, i)), dst); err != nil {
							t.Error(err)
							return
						}
					}
				}(s)
			}
			got := runBatchReceivers(t, srv, 4, batch, senders*per)
			wg.Wait()
			if len(got) != len(want) {
				t.Fatalf("received %d distinct payloads, want %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("payload %q delivered %d times, want %d", k, got[k], n)
				}
			}
		})
	}
}

// TestWriteBatchDelivery sends one WriteBatch through the mmsg path (where
// available) and asserts complete delivery plus the syscall amortization
// the counters should show.
func TestWriteBatchDelivery(t *testing.T) {
	const msgs, writerCap = 50, 16
	src, prof := listenBatch(t, writerCap, false)
	srv, _ := listenBatch(t, writerCap, true) // generic receive keeps sides independent
	dgs := make([]Datagram, msgs)
	want := make(map[string]int, msgs)
	for i := range dgs {
		payload := fmt.Sprintf("wb-%d", i)
		dgs[i] = Datagram{Data: []byte(payload), Dst: srv.LocalAddr()}
		want[payload]++
	}
	bw := src.NewBatchWriter(writerCap)
	if err := src.WriteBatch(bw, dgs); err != nil {
		t.Fatal(err)
	}
	got := runBatchReceivers(t, srv, 2, writerCap, msgs)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("payload %q delivered %d times, want %d", k, got[k], n)
		}
	}
	sys := prof.Counter(metrics.MetricUDPSendSyscalls).Value()
	sent := prof.Counter(metrics.MetricUDPSendMsgs).Value()
	if sent != msgs {
		t.Errorf("send_msgs = %d, want %d", sent, msgs)
	}
	if src.MmsgActive() {
		// 50 messages through a 16-slot writer is 4 chunks; partial sends
		// can add calls but must stay far below one per message.
		if sys >= msgs/2 {
			t.Errorf("send_syscalls = %d for %d messages; sendmmsg not amortizing", sys, msgs)
		}
	} else if sys != msgs {
		t.Errorf("generic path send_syscalls = %d, want %d", sys, msgs)
	}
}

func TestEgressFlushReasons(t *testing.T) {
	const batch = 8
	src, prof := listenBatch(t, batch, false)
	srv, _ := listenBatch(t, batch, true)
	eg := NewEgress(src, batch, 5*time.Millisecond, prof)
	dst := srv.LocalAddr()

	total := 0
	send := func(tag string, n int) {
		for i := 0; i < n; i++ {
			if err := eg.Enqueue([]byte(fmt.Sprintf("eg-%s-%d", tag, i)), dst); err != nil {
				t.Fatalf("enqueue %s-%d: %v", tag, i, err)
			}
			total++
		}
	}

	send("full", batch) // fills the queue: flush-full fires inline
	if v := prof.Counter(metrics.MetricEgressFlushFull).Value(); v != 1 {
		t.Errorf("flush_full = %d, want 1", v)
	}
	send("drain", 3)
	eg.Drain()
	if v := prof.Counter(metrics.MetricEgressFlushDrain).Value(); v != 1 {
		t.Errorf("flush_drain = %d, want 1", v)
	}
	send("linger", 1)
	deadline := time.Now().Add(2 * time.Second)
	for prof.Counter(metrics.MetricEgressFlushLinger).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("linger flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	send("close", 2)
	eg.Close()
	if v := prof.Counter(metrics.MetricEgressFlushClose).Value(); v != 1 {
		t.Errorf("flush_close = %d, want 1", v)
	}
	// Post-close enqueues fall through to the unbatched send path.
	if err := eg.Enqueue([]byte("eg-late-0"), dst); err != nil {
		t.Fatalf("post-close enqueue: %v", err)
	}
	total++

	got := runBatchReceivers(t, srv, 1, batch, total)
	n := 0
	for _, c := range got {
		n += c
	}
	if n != total {
		t.Errorf("delivered %d datagrams, want %d", n, total)
	}
	if err := eg.Err(); err != nil {
		t.Errorf("sticky error: %v", err)
	}
}

// TestEgressConcurrent hammers one egress from several goroutines with the
// linger loop racing them — the -race configuration for the queue.
func TestEgressConcurrent(t *testing.T) {
	const writers, per = 4, 200
	src, prof := listenBatch(t, 16, false)
	srv, _ := listenBatch(t, 16, true)
	eg := NewEgress(src, 16, 100*time.Microsecond, prof)
	dst := srv.LocalAddr()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := eg.Enqueue([]byte(fmt.Sprintf("egc-%d-%d", w, i)), dst); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
				if i%16 == 15 {
					eg.Drain()
				}
			}
		}(w)
	}
	wg.Wait()
	eg.Close()
	got := runBatchReceivers(t, srv, 2, 16, writers*per)
	if len(got) != writers*per {
		t.Errorf("received %d distinct payloads, want %d", len(got), writers*per)
	}
}

// TestReusePortShardDistribution is the satellite shard test: with N
// REUSEPORT sockets on one port and many distinct client 4-tuples, every
// shard must see traffic (the kernel hashes source tuples across them).
func TestReusePortShardDistribution(t *testing.T) {
	if !reusePortAvailable {
		t.Skip("SO_REUSEPORT unavailable on this platform")
	}
	const shards, clients, per = 4, 64, 4
	prof := metrics.NewProfile()
	socks := make([]*UDPSocket, shards)
	first, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{ReusePort: true, BatchSize: 8, Profile: prof, RcvBuf: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	socks[0] = first
	defer first.Close()
	port := first.LocalAddr().String()
	for i := 1; i < shards; i++ {
		s, err := ListenUDPOptions(port, UDPOptions{ReusePort: true, BatchSize: 8, Profile: prof, RcvBuf: 4 << 20})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		socks[i] = s
		defer s.Close()
	}
	dst := first.LocalAddr()
	for c := 0; c < clients; c++ {
		cli, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < per; i++ {
			if err := cli.WriteTo([]byte(fmt.Sprintf("shard-%d-%d", c, i)), dst); err != nil {
				t.Fatal(err)
			}
		}
		cli.Close()
	}
	counts := make([]int, shards)
	totalWant := clients * per
	var mu sync.Mutex
	totalGot := 0
	var wg sync.WaitGroup
	for i, s := range socks {
		wg.Add(1)
		go func(i int, s *UDPSocket) {
			defer wg.Done()
			br := s.NewBatchReader(8)
			for {
				s.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
				n, err := s.ReadBatch(br)
				if err != nil {
					return // deadline: this shard's queue is dry
				}
				mu.Lock()
				counts[i] += n
				totalGot += n
				mu.Unlock()
			}
		}(i, s)
	}
	wg.Wait()
	if totalGot != totalWant {
		t.Fatalf("delivered %d datagrams across shards, want %d", totalGot, totalWant)
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("shard %d received no traffic (distribution %v)", i, counts)
		}
	}
}

// TestReusePortRejectedWhereUnavailable pins the error contract so a
// misconfigured -udp-shard fails loudly instead of silently unsharded.
func TestReusePortRejectedWhereUnavailable(t *testing.T) {
	if reusePortAvailable {
		t.Skip("SO_REUSEPORT available here")
	}
	if _, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{ReusePort: true}); err == nil {
		t.Fatal("ReusePort accepted on a platform without SO_REUSEPORT")
	}
}

// TestReleaseDropAccounting pins the pool bugfix: foreign buffers are
// counted, pool buffers recycle silently, batch packets are no-ops.
func TestReleaseDropAccounting(t *testing.T) {
	s, prof := listenBatch(t, 4, false)
	dropped := prof.Counter(metrics.MetricUDPPoolDropped)
	cli, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.WriteTo([]byte("drop-test"), s.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	pkt, err := s.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	s.Release(pkt)
	if v := dropped.Value(); v != 0 {
		t.Fatalf("pool-originated release counted as dropped (%d)", v)
	}
	// A foreign full-size buffer cannot re-enter the pool: counted.
	s.Release(Packet{Data: make([]byte, MaxDatagram)})
	if v := dropped.Value(); v != 1 {
		t.Errorf("foreign buffer drop count = %d, want 1", v)
	}
	// Batch-reader packets carry no pool buffer: releasing them is a no-op.
	s.Release(Packet{Data: []byte("short")})
	if v := dropped.Value(); v != 1 {
		t.Errorf("non-pool-size release counted (%d), want 1", v)
	}
}

// TestStreamConnCoalescedWriters re-runs the concurrent-writer integrity
// test with group-commit coalescing on: framing must survive, every
// message must arrive, and the writev counters must show the grouping.
func TestStreamConnCoalescedWriters(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const writers, per = 8, 100
	errc := make(chan error, 1)
	countc := make(chan int, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		sc := NewStreamConn(c)
		n := 0
		for n < writers*per {
			if _, err := sc.ReadMessage(); err != nil {
				errc <- err
				countc <- n
				return
			}
			n++
		}
		errc <- nil
		countc <- n
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	prof := metrics.NewProfile()
	calls := prof.Counter(metrics.MetricTCPWriteCalls)
	msgs := prof.Counter(metrics.MetricTCPWriteMsgs)
	cli.InstrumentWrites(calls, msgs)
	cli.EnableCoalesce()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := cli.WriteMessage(testMsg(w*per + i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("reader failed after %d messages: %v", <-countc, err)
	}
	if got := <-countc; got != writers*per {
		t.Errorf("read %d messages, want %d", got, writers*per)
	}
	if got := msgs.Value(); got != writers*per {
		t.Errorf("write_msgs = %d, want %d", got, writers*per)
	}
	if got := calls.Value(); got > msgs.Value() {
		t.Errorf("write_syscalls = %d exceeds messages %d", got, msgs.Value())
	}
	cli.Close()
}

// TestStreamConnCoalesceStickyError: once the connection dies, writers get
// the error instead of silently queueing forever.
func TestStreamConnCoalesceStickyError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli.EnableCoalesce()
	(<-accepted).Close()
	cli.NetConn().Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := cli.WriteRaw([]byte("x")); err != nil {
			break // sticky error surfaced
		}
		if time.Now().After(deadline) {
			t.Fatal("writes on a closed connection never errored")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cli.WriteRaw([]byte("y")); err == nil {
		t.Error("sticky error not returned on subsequent write")
	}
}

func TestUDPSocketBufferSizes(t *testing.T) {
	const req = 1 << 20
	s, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{RcvBuf: req, SndBuf: req})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rcv, snd := s.BufferSizes()
	if rcv == 0 && snd == 0 {
		t.Skip("effective buffer sizes unreadable on this platform")
	}
	// Linux doubles the requested value; any kernel may clamp. The tuned
	// socket must at least not report less than an untuned default.
	if rcv < 4096 || snd < 4096 {
		t.Errorf("implausible effective buffers rcv=%d snd=%d", rcv, snd)
	}
}
