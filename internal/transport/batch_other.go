//go:build !(linux && (amd64 || arm64))

// Portable fallback for platforms without the recvmmsg/sendmmsg fast
// path: batch calls degrade to the ordinary single-datagram syscalls
// (see ReadBatch/WriteBatch in batch.go), preserving the API so callers
// never branch on platform.

package transport

const mmsgAvailable = false

type batchReaderOS struct{}

func (o *batchReaderOS) init(br *BatchReader) {}

type batchWriterOS struct{}

func (o *batchWriterOS) init(n int) {}

// The mmsg entry points are unreachable when mmsgAvailable is false
// (UDPSocket.mmsg is never set); the stubs keep the package compiling.

func (s *UDPSocket) readBatchMmsg(br *BatchReader) (int, error) {
	panic("transport: mmsg path on non-mmsg platform")
}

func (s *UDPSocket) writeBatchMmsg(bw *BatchWriter, dgs []Datagram) (int, error) {
	panic("transport: mmsg path on non-mmsg platform")
}
