//go:build linux && (amd64 || arm64)

// The io_uring UDP attachment. Ingress is one multishot RECVMSG per
// socket: the kernel picks a buffer from the registered ring for every
// datagram and posts a CQE; the reaper decodes the source address and
// queues the payload (still in the slab — zero copy) for readers. Egress
// turns each WriteBatch flush into a batch of SENDMSG submissions sharing
// one io_uring_enter, the completion-model analogue of sendmmsg.
//
// Syscalls/op accounting maps onto the existing counters so the batching
// experiment's formula is engine-independent: submit enters land in
// udp.send_syscalls, the reaper's wait enters in udp.recv_syscalls, and
// the message counters are unchanged.

package transport

import (
	"net"
	"os"
	"sync"
	"syscall"
	"time"
	"unsafe"

	"gosip/internal/metrics"
)

// uringRecvmsgOut mirrors struct io_uring_recvmsg_out, the header the
// kernel writes at the start of each multishot-RECVMSG buffer; the source
// sockaddr follows it, then (controllen) control data, then the payload.
type uringRecvmsgOut struct {
	namelen    uint32
	controllen uint32
	payloadlen uint32
	flags      uint32
}

// recvmsgNameSpace is the per-datagram sockaddr area: the template
// msghdr's Namelen, sized for the largest address family we accept.
const recvmsgNameSpace = uint32(unsafe.Sizeof(syscall.RawSockaddrInet6{}))

// recvmsgPayloadOff is where the datagram bytes start inside a buffer.
const recvmsgPayloadOff = int(unsafe.Sizeof(uringRecvmsgOut{})) + int(recvmsgNameSpace)

// uringSendSlot is one in-flight SENDMSG: the msghdr and its pointed-to
// iovec/sockaddr/payload must stay stable until the completion arrives.
type uringSendSlot struct {
	hdr  syscall.Msghdr
	iov  syscall.Iovec
	name syscall.RawSockaddrInet6
	buf  []byte
}

// uringPkt is one received datagram queued for readers.
type uringPkt struct {
	bid  uint16
	data []byte
	src  *net.UDPAddr
}

// uringUDP runs one socket's I/O through a private ring (one ring per
// SO_REUSEPORT shard keeps submission locks uncontended, matching the
// shard model of the batch engine).
type uringUDP struct {
	sock *UDPSocket
	ring *uringRing
	fd   int

	recvTmpl syscall.Msghdr // template msghdr the multishot RECVMSG reuses
	ingress  *uringBufRing

	mu       sync.Mutex
	inq      []uringPkt
	inqHead  int
	free     int  // buffers currently owned by the kernel's ring
	rearm    bool // multishot died of ENOBUFS; resubmit on next return
	closed   bool
	wake     chan struct{}
	closedCh chan struct{}
	deadline time.Time

	sendMu    sync.Mutex
	slots     []uringSendSlot
	freeSlots []uint16

	resubmits    *metrics.Counter
	bufExhausted *metrics.Counter
	sendFallback *metrics.Counter
	sendErrors   *metrics.Counter
	recvTrunc    *metrics.Counter
}

// Default ring shaping; UDPOptions knobs override.
const (
	defaultUringBufSize = 4096
	maxSendCopy         = defaultUringBufSize
)

// armUring is the platform hook ListenUDPOptions calls for -io-engine
// uring; a nil attachment (no error) means the probe denied io_uring and
// the socket stays on the batch engine.
func armUring(s *UDPSocket, o UDPOptions) (uringAttachment, error) {
	u, err := armUringUDP(s, o)
	if err != nil || u == nil {
		return nil, err
	}
	return u, nil
}

// armUringUDP attaches a ring to a freshly opened socket. Returns nil (and
// no error) when the probe says io_uring is unusable: the caller falls
// back to the batch engine.
func armUringUDP(s *UDPSocket, o UDPOptions) (*uringUDP, error) {
	if ok, _, _ := uringProbeInfo(); !ok {
		return nil, nil
	}
	rc, err := s.conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		return nil, err
	}

	batch := o.BatchSize
	if batch < 1 {
		batch = 1
	}
	sqEntries := uint32(o.UringRing)
	if sqEntries == 0 {
		sqEntries = uint32(4 * batch)
		if sqEntries < 64 {
			sqEntries = 64
		}
		if sqEntries > 1024 {
			sqEntries = 1024
		}
	}
	nBufs := uint32(o.UringBufs)
	if nBufs == 0 {
		nBufs = uint32(8 * batch)
		if nBufs < 64 {
			nBufs = 64
		}
		if nBufs > 2048 {
			nBufs = 2048
		}
	}
	bufSize := o.UringBufSize
	if bufSize == 0 {
		bufSize = defaultUringBufSize
	}
	if bufSize < recvmsgPayloadOff+512 {
		bufSize = recvmsgPayloadOff + 512
	}

	ring, err := newUringRing(sqEntries, newUringCounters(o.Profile))
	if err != nil {
		return nil, err
	}
	ingress, err := ring.newBufRing(0, nBufs, bufSize)
	if err != nil {
		ring.closed.Store(true)
		close(ring.reaperDone) // reaper never started
		ring.unmap()
		syscall.Close(ring.fd)
		return nil, err
	}

	u := &uringUDP{
		sock:     s,
		ring:     ring,
		fd:       fd,
		ingress:  ingress,
		free:     int(ingress.entries),
		wake:     make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
	u.recvTmpl.Namelen = recvmsgNameSpace
	nSlots := sqEntries / 2
	u.slots = make([]uringSendSlot, nSlots)
	u.freeSlots = make([]uint16, nSlots)
	for i := range u.slots {
		u.slots[i].buf = make([]byte, maxSendCopy)
		u.freeSlots[i] = uint16(i)
	}
	if p := o.Profile; p != nil {
		u.resubmits = p.Counter(metrics.MetricUringResubmits)
		u.bufExhausted = p.Counter(metrics.MetricUringBufExhausted)
		u.sendFallback = p.Counter(metrics.MetricUringSendFallback)
		u.sendErrors = p.Counter(metrics.MetricUringSendErrors)
		u.recvTrunc = p.Counter(metrics.MetricUringRecvTrunc)
	}

	if err := u.armRecv(); err != nil {
		ring.close()
		return nil, err
	}
	go ring.runReaper(u.onCQE, func() { s.recvSyscalls.Inc() })
	return u, nil
}

// armRecv submits the multishot RECVMSG that feeds the ingress queue.
func (u *uringUDP) armRecv() error {
	return u.ring.submit(func() error {
		sqe, err := u.ring.getSQE()
		if err != nil {
			return err
		}
		sqe.opcode = opRecvmsg
		sqe.fd = int32(u.fd)
		sqe.addr = uint64(uintptr(unsafe.Pointer(&u.recvTmpl)))
		sqe.ioprio = recvMultishot
		sqe.flags = sqeFlagBufferSelect
		sqe.bufGroup = u.ingress.bgid
		sqe.userData = udFor(udTagUDPRecv, 0)
		return nil
	})
}

// onCQE dispatches one completion; runs on the reaper goroutine.
func (u *uringUDP) onCQE(cqe uringCQE) {
	switch udTag(cqe.userData) {
	case udTagUDPRecv:
		u.onRecv(cqe)
	case udTagUDPSend:
		u.onSend(cqe)
	}
}

func (u *uringUDP) onRecv(cqe uringCQE) {
	if cqe.res < 0 {
		errno := syscall.Errno(-cqe.res)
		u.mu.Lock()
		if u.closed {
			u.mu.Unlock()
			return
		}
		if errno == syscall.ENOBUFS {
			// The buffer ring ran dry: consumers hold every buffer. Rearm
			// once they give some back.
			u.bufExhausted.Inc()
			u.rearm = true
			u.mu.Unlock()
			return
		}
		u.mu.Unlock()
		if errno == syscall.ECANCELED || errno == syscall.EBADF || errno == syscall.ENOTCONN {
			return
		}
		// Transient failure: rearm immediately.
		u.resubmits.Inc()
		u.armRecv()
		return
	}
	more := cqe.flags&cqeFMore != 0
	if cqe.flags&cqeFBuffer != 0 {
		bid := uint16(cqe.flags >> 16)
		buf := u.ingress.buf(bid)
		out := (*uringRecvmsgOut)(unsafe.Pointer(&buf[0]))
		if out.flags&syscall.MSG_TRUNC != 0 {
			u.recvTrunc.Inc()
		}
		src := rawToUDPAddr((*syscall.RawSockaddrInet6)(unsafe.Pointer(&buf[int(unsafe.Sizeof(uringRecvmsgOut{}))])))
		payload := buf[recvmsgPayloadOff:]
		n := int(out.payloadlen)
		if n > len(payload) {
			n = len(payload)
		}
		u.mu.Lock()
		if u.closed {
			u.mu.Unlock()
			u.returnBids([]uint16{bid})
		} else {
			u.free--
			u.inq = append(u.inq, uringPkt{bid: bid, data: payload[:n], src: src})
			u.mu.Unlock()
			u.signal()
		}
	}
	if !more {
		u.mu.Lock()
		closed := u.closed
		u.mu.Unlock()
		if !closed {
			u.resubmits.Inc()
			u.armRecv()
		}
	}
}

func (u *uringUDP) onSend(cqe uringCQE) {
	if cqe.res < 0 {
		u.sendErrors.Inc()
	}
	idx := udID(cqe.userData)
	u.sendMu.Lock()
	u.freeSlots = append(u.freeSlots, uint16(idx))
	u.sendMu.Unlock()
}

// signal wakes one blocked reader; the reader re-signals if the queue
// still has packets for others.
func (u *uringUDP) signal() {
	select {
	case u.wake <- struct{}{}:
	default:
	}
}

// returnBids hands consumed ingress buffers back to the kernel ring and
// rearms the multishot receive if it died of exhaustion.
func (u *uringUDP) returnBids(bids []uint16) {
	if len(bids) == 0 {
		return
	}
	u.mu.Lock()
	if u.closed {
		// The ring mapping may already be gone; the kernel released the
		// registered buffers when the ring fd closed.
		u.mu.Unlock()
		return
	}
	for _, bid := range bids {
		u.ingress.push(bid)
	}
	u.free += len(bids)
	rearm := u.rearm && !u.closed
	u.rearm = false
	u.mu.Unlock()
	if rearm {
		u.resubmits.Inc()
		u.armRecv()
	}
}

// setDeadline bounds blocked readers (phone retransmission timeouts). A
// deadline already in the past unblocks them immediately.
func (u *uringUDP) setDeadline(t time.Time) {
	u.mu.Lock()
	u.deadline = t
	u.mu.Unlock()
	u.signal()
}

var errDeadline = os.ErrDeadlineExceeded

// wait blocks until the ingress queue is non-empty, the socket closes, or
// the deadline passes. Returns nil when packets are available; the caller
// rechecks under u.mu.
func (u *uringUDP) wait() error {
	for {
		u.mu.Lock()
		if u.closed {
			u.mu.Unlock()
			return net.ErrClosed
		}
		if u.inqHead < len(u.inq) {
			u.mu.Unlock()
			return nil
		}
		dl := u.deadline
		u.mu.Unlock()

		var timerC <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return errDeadline
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-u.wake:
		case <-timerC:
		case <-u.closedCh:
			if timer != nil {
				timer.Stop()
			}
			return net.ErrClosed
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// readBatch implements ReadBatch on the completion path: return the
// previous batch's buffers, wait for arrivals, and hand out up to the
// reader's capacity as zero-copy slab slices.
func (u *uringUDP) readBatch(br *BatchReader) (int, error) {
	u.returnBids(br.bids)
	br.bids = br.bids[:0]
	for {
		if err := u.wait(); err != nil {
			return 0, err
		}
		u.mu.Lock()
		n := len(u.inq) - u.inqHead
		if n == 0 {
			// Lost the race to another reader; wait again.
			u.mu.Unlock()
			continue
		}
		if n > len(br.pkts) {
			n = len(br.pkts)
		}
		for i := 0; i < n; i++ {
			p := u.inq[u.inqHead+i]
			br.pkts[i] = Packet{Data: p.data, Src: p.src}
			br.bids = append(br.bids, p.bid)
		}
		u.inqHead += n
		if u.inqHead == len(u.inq) {
			u.inq = u.inq[:0]
			u.inqHead = 0
		}
		remaining := u.inqHead < len(u.inq)
		u.mu.Unlock()
		if remaining {
			u.signal()
		}
		u.sock.recvMsgs.Add(int64(n))
		u.sock.recvOcc.Record(time.Duration(n))
		return n, nil
	}
}

// readPacket implements ReadPacket: one datagram, zero copy, buffer
// returned via Release.
func (u *uringUDP) readPacket() (Packet, error) {
	for {
		if err := u.wait(); err != nil {
			return Packet{}, err
		}
		u.mu.Lock()
		if u.inqHead >= len(u.inq) {
			u.mu.Unlock()
			continue
		}
		p := u.inq[u.inqHead]
		u.inqHead++
		if u.inqHead == len(u.inq) {
			u.inq = u.inq[:0]
			u.inqHead = 0
		}
		remaining := u.inqHead < len(u.inq)
		u.mu.Unlock()
		if remaining {
			u.signal()
		}
		u.sock.recvMsgs.Inc()
		u.sock.recvOcc.Record(1)
		return Packet{Data: p.data, Src: p.src, ubid: uint32(p.bid) + 1}, nil
	}
}

// writeBatch submits one SENDMSG per datagram and flushes them in a single
// enter — the ring's sendmmsg. Datagrams that cannot take a slot (pool
// empty, payload larger than a slot buffer) fall back to the direct
// syscall so nothing ever blocks on completions.
func (u *uringUDP) writeBatch(dgs []Datagram) error {
	var fallback []Datagram
	err := u.ring.submit(func() error {
		for i := range dgs {
			dg := &dgs[i]
			u.sendMu.Lock()
			var slot *uringSendSlot
			var idx uint16
			if n := len(u.freeSlots); n > 0 && len(dg.Data) <= maxSendCopy {
				idx = u.freeSlots[n-1]
				u.freeSlots = u.freeSlots[:n-1]
				slot = &u.slots[idx]
			}
			u.sendMu.Unlock()
			if slot == nil {
				fallback = append(fallback, *dg)
				continue
			}
			nl, err := encodeUDPAddr(&slot.name, dg.Dst, u.sock.is6)
			if err != nil {
				u.sendMu.Lock()
				u.freeSlots = append(u.freeSlots, idx)
				u.sendMu.Unlock()
				return err
			}
			n := copy(slot.buf[:cap(slot.buf)], dg.Data)
			slot.iov.Base = &slot.buf[0]
			slot.iov.Len = uint64(n)
			slot.hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&slot.name)),
				Namelen: nl,
				Iov:     &slot.iov,
				Iovlen:  1,
			}
			sqe, err := u.ring.getSQE()
			if err != nil {
				u.sendMu.Lock()
				u.freeSlots = append(u.freeSlots, idx)
				u.sendMu.Unlock()
				return err
			}
			sqe.opcode = opSendmsg
			sqe.fd = int32(u.fd)
			sqe.addr = uint64(uintptr(unsafe.Pointer(&slot.hdr)))
			sqe.opFlags = syscall.MSG_NOSIGNAL
			sqe.userData = udFor(udTagUDPSend, uint32(idx))
		}
		return nil
	})
	if err != nil {
		return err
	}
	submitted := len(dgs) - len(fallback)
	if submitted > 0 {
		u.sock.sendSyscalls.Inc() // the flush's submit enter
		u.sock.sendMsgs.Add(int64(submitted))
		u.sock.sendOcc.Record(time.Duration(submitted))
	}
	for _, dg := range fallback {
		u.sendFallback.Inc()
		if err := u.sock.WriteTo(dg.Data, dg.Dst); err != nil {
			return err
		}
	}
	return nil
}

// releaseBid returns a single ReadPacket buffer (Packet.ubid).
func (u *uringUDP) releaseBid(bid uint16) {
	u.returnBids([]uint16{bid})
}

// close tears down the attachment: unblock readers, then close the ring
// (which joins the reaper and releases the registered buffers).
func (u *uringUDP) close() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	close(u.closedCh)
	u.mu.Unlock()
	u.ring.close()
}
