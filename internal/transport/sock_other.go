//go:build !linux

package transport

import (
	"fmt"
	"net"
	"syscall"
)

const reusePortAvailable = false

func listenReusePort(ua *net.UDPAddr) (*net.UDPConn, error) {
	return nil, fmt.Errorf("transport: SO_REUSEPORT unavailable")
}

// socketBufferSizes is unavailable portably; callers treat zeroes as
// "unknown" and fall back to reporting the requested values.
func socketBufferSizes(c syscall.Conn) (rcv, snd int) { return 0, 0 }
