//go:build linux && (amd64 || arm64)

// The recvmmsg/sendmmsg fast path, built on raw syscalls so the module
// stays dependency-free (no golang.org/x/sys). Both syscalls take an array
// of mmsghdr — a msghdr plus the per-message byte count the kernel fills —
// and move up to vlen datagrams per kernel crossing. The struct layout and
// syscall numbers are identical on linux/amd64 and linux/arm64 (both are
// 64-bit little-endian with 8-byte msghdr fields), which the build tag
// pins; every other platform uses the generic single-packet path.
//
// The fd is used under syscall.RawConn's Read/Write closures with
// MSG_DONTWAIT: returning false on EAGAIN parks the goroutine on the
// netpoller, so deadlines and Close behave exactly as they do for the
// standard library's own I/O.

package transport

import (
	"fmt"
	"net"
	"os"
	"syscall"
	"unsafe"
)

const mmsgAvailable = true

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

type batchReaderOS struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
}

func (o *batchReaderOS) init(br *BatchReader) {
	n := len(br.bufs)
	o.hdrs = make([]mmsghdr, n)
	o.iovs = make([]syscall.Iovec, n)
	o.names = make([]syscall.RawSockaddrInet6, n)
	for i := range o.hdrs {
		o.iovs[i].Base = &br.bufs[i][0]
		o.iovs[i].Len = MaxDatagram
		o.hdrs[i].hdr.Iov = &o.iovs[i]
		o.hdrs[i].hdr.Iovlen = 1
		o.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&o.names[i]))
		o.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(o.names[i]))
	}
}

func (s *UDPSocket) readBatchMmsg(br *BatchReader) (int, error) {
	o := &br.sys
	var n int
	var serr error
	err := s.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&o.hdrs[0])), uintptr(len(o.hdrs)),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		if errno != 0 {
			serr = os.NewSyscallError("recvmmsg", errno)
			return true
		}
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	if serr != nil {
		return 0, serr
	}
	for i := 0; i < n; i++ {
		br.pkts[i] = Packet{Data: br.bufs[i][:o.hdrs[i].n], Src: rawToUDPAddr(&o.names[i])}
		// The kernel overwrote Namelen with the actual sockaddr size;
		// restore the buffer size for the next call.
		o.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(o.names[i]))
	}
	return n, nil
}

type batchWriterOS struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
}

func (o *batchWriterOS) init(n int) {
	o.hdrs = make([]mmsghdr, n)
	o.iovs = make([]syscall.Iovec, n)
	o.names = make([]syscall.RawSockaddrInet6, n)
	for i := range o.hdrs {
		o.hdrs[i].hdr.Iov = &o.iovs[i]
		o.hdrs[i].hdr.Iovlen = 1
		o.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&o.names[i]))
	}
}

// writeBatchMmsg sends dgs (≤ the writer's capacity) and reports how many
// sendmmsg syscalls it took: normally one, more when the kernel accepts a
// batch partially and the loop continues from the first unsent message.
func (s *UDPSocket) writeBatchMmsg(bw *BatchWriter, dgs []Datagram) (int, error) {
	o := &bw.sys
	for i := range dgs {
		if len(dgs[i].Data) > 0 {
			o.iovs[i].Base = &dgs[i].Data[0]
		} else {
			o.iovs[i].Base = nil
		}
		o.iovs[i].Len = uint64(len(dgs[i].Data))
		nl, err := encodeUDPAddr(&o.names[i], dgs[i].Dst, s.is6)
		if err != nil {
			return 0, err
		}
		o.hdrs[i].hdr.Namelen = nl
		o.hdrs[i].n = 0
	}
	off, calls := 0, 0
	var serr error
	err := s.rc.Write(func(fd uintptr) bool {
		for off < len(dgs) {
			r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&o.hdrs[off])), uintptr(len(dgs)-off),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EAGAIN {
				return false // socket buffer full: park until writable
			}
			if errno != 0 {
				serr = os.NewSyscallError("sendmmsg", errno)
				return true
			}
			calls++
			off += int(r1)
		}
		return true
	})
	if err != nil {
		return calls, err
	}
	return calls, serr
}

// rawToUDPAddr decodes the kernel-filled source sockaddr. The two-byte
// view of Port keeps the conversion endian-correct without bit tricks.
func rawToUDPAddr(rsa *syscall.RawSockaddrInet6) *net.UDPAddr {
	switch rsa.Family {
	case syscall.AF_INET:
		r4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		pb := (*[2]byte)(unsafe.Pointer(&r4.Port))
		ip := make(net.IP, net.IPv4len)
		copy(ip, r4.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(pb[0])<<8 | int(pb[1])}
	case syscall.AF_INET6:
		pb := (*[2]byte)(unsafe.Pointer(&rsa.Port))
		ip := make(net.IP, net.IPv6len)
		copy(ip, rsa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(pb[0])<<8 | int(pb[1])}
	}
	return nil // not reachable for datagrams on an AF_INET/AF_INET6 socket
}

// encodeUDPAddr fills the sockaddr slot for one destination. A v4 address
// sent through a v6-bound socket is encoded in mapped form, matching what
// the standard library's sendto path does.
func encodeUDPAddr(dst *syscall.RawSockaddrInet6, a *net.UDPAddr, force6 bool) (uint32, error) {
	if a == nil {
		return 0, fmt.Errorf("transport: datagram with nil destination")
	}
	if ip4 := a.IP.To4(); ip4 != nil && !force6 {
		r4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(dst))
		r4.Family = syscall.AF_INET
		pb := (*[2]byte)(unsafe.Pointer(&r4.Port))
		pb[0], pb[1] = byte(a.Port>>8), byte(a.Port)
		copy(r4.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, nil
	}
	ip16 := a.IP.To16()
	if ip16 == nil {
		return 0, fmt.Errorf("transport: unroutable destination IP %v", a.IP)
	}
	dst.Family = syscall.AF_INET6
	pb := (*[2]byte)(unsafe.Pointer(&dst.Port))
	pb[0], pb[1] = byte(a.Port>>8), byte(a.Port)
	copy(dst.Addr[:], ip16)
	dst.Scope_id = 0
	return syscall.SizeofSockaddrInet6, nil
}
