//go:build !linux || !(amd64 || arm64)

// io_uring engine stubs for platforms without it: the probe reports
// unsupported, arming is a no-op, and every caller stays on the batch or
// portable paths.

package transport

import "net"

func armUring(s *UDPSocket, o UDPOptions) (uringAttachment, error) { return nil, nil }

func newStreamEngineImpl(o StreamEngineOptions) (streamEngineImpl, error) { return nil, nil }

func isEngineConn(nc net.Conn) bool { return false }

func uringProbeInfo() (bool, uint32, string) {
	return false, 0, "io_uring requires linux amd64/arm64"
}

func setUringForceDenied(v bool) bool { return false }
