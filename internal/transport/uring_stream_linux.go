//go:build linux && (amd64 || arm64)

// The io_uring stream engine. One ring serves every stream socket of a
// server: listeners arm multishot ACCEPT, connections arm multishot RECV
// into a shared registered buffer ring, and writes queue per connection and
// leave as one SENDMSG submission at a time (an iovec group commit — the
// completion-driven analogue of the writev coalescing path). TCP needs
// ordered delivery, and io_uring guarantees no ordering between independent
// SQEs, so exactly one send is in flight per connection; everything that
// queues behind it departs with the next submission.
//
// Engine-backed connections implement net.Conn, so the SIP framing reader,
// the TLS layer, and the connection-manager machinery stack on top
// unchanged.

package transport

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
	"unsafe"

	"gosip/internal/metrics"
)

// Stream engine shaping defaults.
const (
	defaultStreamRing    = 256
	defaultStreamBufs    = 1024
	defaultStreamBufSize = 8192

	// maxStreamSendIovs bounds one SENDMSG's iovec group.
	maxStreamSendIovs = 64
	// maxStreamWQBytes is the per-connection write-queue budget; writers
	// block (backpressure) beyond it.
	maxStreamWQBytes = 1 << 20
	// maxStreamFreeBufs bounds the per-connection recycle list.
	maxStreamFreeBufs = 64
)

type uringStream struct {
	ring *uringRing
	br   *uringBufRing
	opts StreamEngineOptions

	mu     sync.Mutex
	conns  map[uint32]*uringConn
	lns    map[uint32]*uringListener
	nextID uint32
	closed bool
	rearm  map[uint32]bool // conns whose multishot RECV died of ENOBUFS

	writeCalls   *metrics.Counter
	writeMsgs    *metrics.Counter
	resubmits    *metrics.Counter
	bufExhausted *metrics.Counter
	sendErrors   *metrics.Counter
}

func newStreamEngineImpl(o StreamEngineOptions) (streamEngineImpl, error) {
	if ok, _, _ := uringProbeInfo(); !ok {
		return nil, nil
	}
	ringSz := uint32(o.Ring)
	if ringSz == 0 {
		ringSz = defaultStreamRing
	}
	nBufs := uint32(o.Bufs)
	if nBufs == 0 {
		nBufs = defaultStreamBufs
	}
	bufSize := o.BufSize
	if bufSize == 0 {
		bufSize = defaultStreamBufSize
	}
	ring, err := newUringRing(ringSz, newUringCounters(o.Profile))
	if err != nil {
		return nil, err
	}
	br, err := ring.newBufRing(0, nBufs, bufSize)
	if err != nil {
		ring.closed.Store(true)
		close(ring.reaperDone)
		ring.unmap()
		syscall.Close(ring.fd)
		return nil, err
	}
	e := &uringStream{
		ring:  ring,
		br:    br,
		opts:  o,
		conns: make(map[uint32]*uringConn),
		lns:   make(map[uint32]*uringListener),
		rearm: make(map[uint32]bool),
	}
	if p := o.Profile; p != nil {
		e.writeCalls = p.Counter(metrics.MetricTCPWriteCalls)
		e.writeMsgs = p.Counter(metrics.MetricTCPWriteMsgs)
		e.resubmits = p.Counter(metrics.MetricUringResubmits)
		e.bufExhausted = p.Counter(metrics.MetricUringBufExhausted)
		e.sendErrors = p.Counter(metrics.MetricUringSendErrors)
	}
	go ring.runReaper(e.onCQE, nil)
	return e, nil
}

func isEngineConn(nc net.Conn) bool {
	_, ok := nc.(*uringConn)
	return ok
}

// onCQE dispatches one completion on the reaper goroutine.
func (e *uringStream) onCQE(cqe uringCQE) {
	id := udID(cqe.userData)
	switch udTag(cqe.userData) {
	case udTagStreamRecv:
		e.mu.Lock()
		c := e.conns[id]
		e.mu.Unlock()
		if c != nil {
			c.onRecv(cqe)
		} else if cqe.flags&cqeFBuffer != 0 {
			// Completion for a connection already finalized: reclaim the buffer.
			e.returnBufs([]uint16{uint16(cqe.flags >> 16)})
		}
	case udTagStreamSend:
		e.mu.Lock()
		c := e.conns[id]
		e.mu.Unlock()
		if c != nil {
			c.onSend(cqe)
		}
	case udTagAccept:
		e.mu.Lock()
		ln := e.lns[id]
		e.mu.Unlock()
		if ln != nil {
			ln.onAccept(cqe)
		} else if cqe.res >= 0 {
			syscall.Close(int(cqe.res))
		}
	}
}

// returnBufs pushes consumed ingress buffers back and rearms any multishot
// receives that died of exhaustion.
func (e *uringStream) returnBufs(bids []uint16) {
	if len(bids) == 0 {
		return
	}
	e.mu.Lock()
	if e.closed {
		// The ring (and the buffer ring's mapping with it) is gone; the
		// kernel already released every registered buffer.
		e.mu.Unlock()
		return
	}
	for _, bid := range bids {
		e.br.push(bid)
	}
	var rearm []*uringConn
	if len(e.rearm) > 0 && !e.closed {
		for id := range e.rearm {
			if c := e.conns[id]; c != nil {
				rearm = append(rearm, c)
			}
			delete(e.rearm, id)
		}
	}
	e.mu.Unlock()
	for _, c := range rearm {
		e.resubmits.Inc()
		c.armRecv()
	}
}

// register installs an object under a fresh id. ids are never reused, so a
// late completion can't be misdelivered to a successor.
func (e *uringStream) register(c *uringConn, ln *uringListener) (uint32, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, net.ErrClosed
	}
	e.nextID++
	id := e.nextID
	if c != nil {
		c.id = id
		e.conns[id] = c
	}
	if ln != nil {
		ln.id = id
		e.lns[id] = ln
	}
	return id, nil
}

// Listen opens a TCP listener and arms multishot ACCEPT on it.
func (e *uringStream) Listen(addr string) (net.Listener, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	tl, ok := inner.(*net.TCPListener)
	if !ok {
		inner.Close()
		return nil, fmt.Errorf("transport: uring listener needs TCP, got %T", inner)
	}
	f, err := tl.File()
	if err != nil {
		inner.Close()
		return nil, err
	}
	ln := &uringListener{
		eng:      e,
		inner:    inner,
		file:     f,
		fd:       int(f.Fd()),
		acceptCh: make(chan int, 128),
		closedCh: make(chan struct{}),
	}
	if _, err := e.register(nil, ln); err != nil {
		f.Close()
		inner.Close()
		return nil, err
	}
	if err := ln.armAccept(); err != nil {
		ln.Close()
		return nil, err
	}
	return ln, nil
}

// Wrap converts an established *net.TCPConn into an engine-backed conn by
// duplicating its fd; the original is closed.
func (e *uringStream) Wrap(nc net.Conn) (net.Conn, error) {
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		return nil, fmt.Errorf("transport: uring wrap needs *net.TCPConn, got %T", nc)
	}
	f, err := tc.File()
	if err != nil {
		return nil, err
	}
	local, remote := tc.LocalAddr(), tc.RemoteAddr()
	tc.Close()
	c, err := e.newConn(f, local, remote)
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// newConn registers a connection around an owned fd and arms its receive.
func (e *uringStream) newConn(f *os.File, local, remote net.Addr) (*uringConn, error) {
	c := &uringConn{
		eng:    e,
		file:   f,
		fd:     int(f.Fd()),
		local:  local,
		remote: remote,
		rGen:   make(chan struct{}),
		wGen:   make(chan struct{}),
	}
	if _, err := e.register(c, nil); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.recvLive = true
	c.mu.Unlock()
	if err := c.armRecv(); err != nil {
		c.mu.Lock()
		c.recvLive = false
		c.recvDone = true
		c.mu.Unlock()
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close tears the engine down: ring first (cancels every outstanding
// operation with it), then every conn and listener fd.
func (e *uringStream) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*uringConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	lns := make([]*uringListener, 0, len(e.lns))
	for _, ln := range e.lns {
		lns = append(lns, ln)
	}
	e.mu.Unlock()
	// Closing the ring fd releases its pending requests, so the dup'd
	// socket fds can be closed directly afterwards.
	e.ring.close()
	for _, ln := range lns {
		ln.teardown()
	}
	for _, c := range conns {
		c.teardown()
	}
	return nil
}

// --- listener ----------------------------------------------------------

type uringListener struct {
	eng   *uringStream
	id    uint32
	inner net.Listener
	file  *os.File
	fd    int

	acceptCh chan int
	closedCh chan struct{}
	mu       sync.Mutex
	closed   bool
}

func (l *uringListener) armAccept() error {
	return l.eng.ring.submit(func() error {
		sqe, err := l.eng.ring.getSQE()
		if err != nil {
			return err
		}
		sqe.opcode = opAccept
		sqe.fd = int32(l.fd)
		sqe.ioprio = acceptMultishot
		sqe.opFlags = syscall.SOCK_CLOEXEC
		sqe.userData = udFor(udTagAccept, l.id)
		return nil
	})
}

// onAccept handles one multishot ACCEPT completion (reaper goroutine).
func (l *uringListener) onAccept(cqe uringCQE) {
	if cqe.res >= 0 {
		select {
		case l.acceptCh <- int(cqe.res):
		default:
			// Accept backlog full: shed the connection, as a kernel listen
			// backlog overflow would.
			syscall.Close(int(cqe.res))
		}
	}
	if cqe.flags&cqeFMore != 0 {
		return
	}
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed || cqe.res == -int32(syscall.ECANCELED) || cqe.res == -int32(syscall.EBADF) {
		return
	}
	l.eng.resubmits.Inc()
	l.armAccept()
}

func (l *uringListener) Accept() (net.Conn, error) {
	for {
		select {
		case fd := <-l.acceptCh:
			c, err := l.adopt(fd)
			if err != nil {
				syscall.Close(fd)
				continue // peer vanished between accept and adoption
			}
			return c, nil
		case <-l.closedCh:
			return nil, net.ErrClosed
		}
	}
}

// adopt turns a raw accepted fd into an engine conn: socket options first
// (Nagle off, optional buffer sizes — what wrapStream does for portable
// accepts), then registration and the receive arm.
func (l *uringListener) adopt(fd int) (net.Conn, error) {
	_ = syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
	if l.eng.opts.RcvBuf > 0 {
		_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_RCVBUF, l.eng.opts.RcvBuf)
	}
	if l.eng.opts.SndBuf > 0 {
		_ = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_SNDBUF, l.eng.opts.SndBuf)
	}
	remote := sockaddrTCP(fd, syscall.Getpeername)
	local := l.inner.Addr()
	f := os.NewFile(uintptr(fd), "uring-accepted")
	c, err := l.eng.newConn(f, local, remote)
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func sockaddrTCP(fd int, get func(int) (syscall.Sockaddr, error)) net.Addr {
	sa, err := get(fd)
	if err != nil {
		return &net.TCPAddr{}
	}
	switch a := sa.(type) {
	case *syscall.SockaddrInet4:
		return &net.TCPAddr{IP: append(net.IP(nil), a.Addr[:]...), Port: a.Port}
	case *syscall.SockaddrInet6:
		return &net.TCPAddr{IP: append(net.IP(nil), a.Addr[:]...), Port: a.Port}
	}
	return &net.TCPAddr{}
}

func (l *uringListener) Addr() net.Addr { return l.inner.Addr() }

func (l *uringListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.closedCh)
	l.mu.Unlock()
	// Cancel the multishot accept, then release the fds. Queued-but-never-
	// accepted fds are closed too.
	l.eng.ring.submit(func() error {
		sqe, err := l.eng.ring.getSQE()
		if err != nil {
			return err
		}
		sqe.opcode = opAsyncCancel
		sqe.addr = udFor(udTagAccept, l.id)
		sqe.userData = udFor(udTagCancel, l.id)
		return nil
	})
	l.eng.mu.Lock()
	delete(l.eng.lns, l.id)
	l.eng.mu.Unlock()
	l.drainAccepted()
	l.file.Close()
	return l.inner.Close()
}

// teardown is the engine-shutdown path: the ring is already gone.
func (l *uringListener) teardown() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.closedCh)
	}
	l.mu.Unlock()
	l.drainAccepted()
	l.file.Close()
	l.inner.Close()
}

func (l *uringListener) drainAccepted() {
	for {
		select {
		case fd := <-l.acceptCh:
			syscall.Close(fd)
		default:
			return
		}
	}
}

// --- connection --------------------------------------------------------

// streamSeg is one received byte range still held in the ingress slab.
type streamSeg struct {
	bid  uint16
	data []byte
}

// uringConn is an engine-backed net.Conn. Reads drain completion segments;
// writes queue and leave as single-inflight SENDMSG group commits.
type uringConn struct {
	eng    *uringStream
	id     uint32
	file   *os.File
	fd     int
	local  net.Addr
	remote net.Addr

	mu sync.Mutex

	// Read side.
	segs      []streamSeg
	segHead   int
	segOff    int
	rerr      error // terminal read condition (io.EOF or a real error)
	recvLive  bool  // multishot RECV armed
	recvDone  bool  // receive side is terminal; no more completions
	rGen      chan struct{}
	rDeadline time.Time

	// Write side.
	wq        [][]byte
	wqBytes   int
	wInflight int // entries of wq currently referenced by the in-flight SENDMSG
	wPartial  int // bytes of wq[0] already accepted by a short send
	wIovs     []syscall.Iovec
	wHdr      syscall.Msghdr
	werr      error
	wGen      chan struct{}
	wFree     [][]byte

	closing   bool
	finalized bool
}

func (c *uringConn) armRecv() error {
	return c.eng.ring.submit(func() error {
		sqe, err := c.eng.ring.getSQE()
		if err != nil {
			return err
		}
		sqe.opcode = opRecv
		sqe.fd = int32(c.fd)
		sqe.ioprio = recvMultishot
		sqe.flags = sqeFlagBufferSelect
		sqe.bufGroup = c.eng.br.bgid
		sqe.userData = udFor(udTagStreamRecv, c.id)
		return nil
	})
}

// onRecv handles one multishot RECV completion (reaper goroutine).
func (c *uringConn) onRecv(cqe uringCQE) {
	more := cqe.flags&cqeFMore != 0
	c.mu.Lock()
	switch {
	case cqe.res > 0 && cqe.flags&cqeFBuffer != 0:
		bid := uint16(cqe.flags >> 16)
		c.segs = append(c.segs, streamSeg{bid: bid, data: c.eng.br.buf(bid)[:cqe.res]})
	case cqe.res == 0:
		// Orderly EOF: terminal.
		if c.rerr == nil {
			c.rerr = io.EOF
		}
		c.recvDone = true
	case cqe.res < 0:
		errno := syscall.Errno(-cqe.res)
		if errno == syscall.ENOBUFS && !c.closing {
			// Shared buffer ring dry: rearm once buffers return.
			c.eng.bufExhausted.Inc()
			c.recvLive = false
			c.eng.mu.Lock()
			c.eng.rearm[c.id] = true
			c.eng.mu.Unlock()
			c.wakeReadersLocked()
			c.mu.Unlock()
			return
		}
		if c.rerr == nil {
			if errno == syscall.ECANCELED || errno == syscall.EBADF {
				c.rerr = net.ErrClosed
			} else {
				c.rerr = os.NewSyscallError("recv", errno)
			}
		}
		c.recvDone = true
	}
	if !more && !c.recvDone {
		if c.closing {
			c.recvDone = true
		} else {
			// The kernel retired the multishot without a terminal condition;
			// rearm outside the lock.
			c.recvLive = false
			c.wakeReadersLocked()
			c.mu.Unlock()
			c.eng.resubmits.Inc()
			if err := c.armRecv(); err == nil {
				c.mu.Lock()
				c.recvLive = true
				c.mu.Unlock()
			} else {
				c.mu.Lock()
				if c.rerr == nil {
					c.rerr = err
				}
				c.recvDone = true
				c.maybeFinalizeLocked()
				c.mu.Unlock()
			}
			return
		}
	}
	if c.recvDone {
		c.recvLive = false
	}
	c.wakeReadersLocked()
	c.maybeFinalizeLocked()
	c.mu.Unlock()
}

// onSend handles one SENDMSG completion (reaper goroutine): recycle what
// the kernel took, resubmit the remainder or the next group.
func (c *uringConn) onSend(cqe uringCQE) {
	c.mu.Lock()
	inflight := c.wInflight
	c.wInflight = 0
	if cqe.res < 0 {
		errno := syscall.Errno(-cqe.res)
		c.eng.sendErrors.Inc()
		if c.werr == nil {
			if errno == syscall.ECANCELED || errno == syscall.EBADF || errno == syscall.EPIPE {
				c.werr = net.ErrClosed
			} else {
				c.werr = os.NewSyscallError("send", errno)
			}
		}
		c.dropQueueLocked()
	} else {
		sent := int(cqe.res) + c.wPartial
		c.wPartial = 0
		done := 0
		for done < inflight && sent >= len(c.wq[done]) {
			sent -= len(c.wq[done])
			c.recycleLocked(c.wq[done])
			done++
		}
		if done < inflight && sent > 0 {
			// Short send mid-buffer: the unsent tail goes back to the front.
			c.wPartial = sent
		}
		if done > 0 {
			c.wq = c.wq[done:]
		}
		c.wqBytes = 0
		for _, b := range c.wq {
			c.wqBytes += len(b)
		}
		if len(c.wq) > 0 && c.werr == nil && !c.finalized {
			c.submitSendLocked()
		}
	}
	c.wakeWritersLocked()
	c.maybeFinalizeLocked()
	c.mu.Unlock()
}

// submitSendLocked groups the head of the write queue into one SENDMSG.
// c.mu held; the ring's submit lock nests inside it.
func (c *uringConn) submitSendLocked() {
	n := len(c.wq)
	if n > maxStreamSendIovs {
		n = maxStreamSendIovs
	}
	if cap(c.wIovs) < n {
		c.wIovs = make([]syscall.Iovec, n)
	}
	c.wIovs = c.wIovs[:n]
	for i := 0; i < n; i++ {
		b := c.wq[i]
		if i == 0 && c.wPartial > 0 {
			b = b[c.wPartial:]
		}
		c.wIovs[i].Base = &b[0]
		c.wIovs[i].Len = uint64(len(b))
	}
	c.wHdr = syscall.Msghdr{Iov: &c.wIovs[0], Iovlen: uint64(n)}
	err := c.eng.ring.submit(func() error {
		sqe, err := c.eng.ring.getSQE()
		if err != nil {
			return err
		}
		sqe.opcode = opSendmsg
		sqe.fd = int32(c.fd)
		sqe.addr = uint64(uintptr(unsafe.Pointer(&c.wHdr)))
		sqe.opFlags = syscall.MSG_NOSIGNAL
		sqe.userData = udFor(udTagStreamSend, c.id)
		return nil
	})
	if err != nil {
		if c.werr == nil {
			c.werr = err
		}
		c.dropQueueLocked()
		return
	}
	c.eng.writeCalls.Inc()
	c.wInflight = n
}

func (c *uringConn) dropQueueLocked() {
	c.wq = nil
	c.wqBytes = 0
	c.wInflight = 0
	c.wPartial = 0
}

func (c *uringConn) recycleLocked(b []byte) {
	if len(c.wFree) < maxStreamFreeBufs {
		c.wFree = append(c.wFree, b[:0])
	}
}

func (c *uringConn) copyLocked(p []byte) []byte {
	var buf []byte
	if n := len(c.wFree); n > 0 {
		buf = c.wFree[n-1]
		c.wFree = c.wFree[:n-1]
	}
	return append(buf[:0], p...)
}

func (c *uringConn) wakeReadersLocked() { close(c.rGen); c.rGen = make(chan struct{}) }
func (c *uringConn) wakeWritersLocked() { close(c.wGen); c.wGen = make(chan struct{}) }

// Read implements net.Conn: drain buffered segments, else block for the
// next completion, honoring the read deadline.
func (c *uringConn) Read(p []byte) (int, error) {
	var released []uint16
	for {
		c.mu.Lock()
		if !c.rDeadline.IsZero() && !time.Now().Before(c.rDeadline) {
			c.mu.Unlock()
			return 0, os.ErrDeadlineExceeded
		}
		if c.segHead < len(c.segs) {
			n := 0
			for n < len(p) && c.segHead < len(c.segs) {
				seg := &c.segs[c.segHead]
				k := copy(p[n:], seg.data[c.segOff:])
				n += k
				c.segOff += k
				if c.segOff == len(seg.data) {
					released = append(released, seg.bid)
					c.segHead++
					c.segOff = 0
				}
			}
			if c.segHead == len(c.segs) {
				c.segs = c.segs[:0]
				c.segHead = 0
			}
			c.mu.Unlock()
			c.eng.returnBufs(released)
			return n, nil
		}
		if c.rerr != nil {
			err := c.rerr
			c.mu.Unlock()
			return 0, err
		}
		if c.closing {
			c.mu.Unlock()
			return 0, net.ErrClosed
		}
		dl := c.rDeadline
		ch := c.rGen
		c.mu.Unlock()

		var timer *time.Timer
		var timerC <-chan time.Time
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-ch:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// Write implements net.Conn: copy, queue, and ensure a send is in flight.
// The bytes are on their way when Write returns (group commit), with
// failures surfacing on a later write — the contract coalesced StreamConn
// writers already live with. Writers block only when the queue budget is
// exhausted (kernel-socket-buffer-style backpressure).
func (c *uringConn) Write(p []byte) (int, error) {
	for {
		c.mu.Lock()
		if c.werr != nil {
			err := c.werr
			c.mu.Unlock()
			return 0, err
		}
		if c.closing {
			c.mu.Unlock()
			return 0, net.ErrClosed
		}
		if c.wqBytes < maxStreamWQBytes {
			c.wq = append(c.wq, c.copyLocked(p))
			c.wqBytes += len(p)
			c.eng.writeMsgs.Inc()
			if c.wInflight == 0 {
				c.submitSendLocked()
			}
			err := c.werr
			c.mu.Unlock()
			if err != nil {
				return 0, err
			}
			return len(p), nil
		}
		ch := c.wGen
		c.mu.Unlock()
		<-ch
	}
}

func (c *uringConn) LocalAddr() net.Addr  { return c.local }
func (c *uringConn) RemoteAddr() net.Addr { return c.remote }

func (c *uringConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

func (c *uringConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rDeadline = t
	c.wakeReadersLocked()
	c.mu.Unlock()
	return nil
}

func (c *uringConn) SetWriteDeadline(t time.Time) error {
	// Writes never block past the queue budget; deadlines are accepted for
	// interface compatibility (the proxy does not set them).
	return nil
}

// Close cancels the receive side and finalizes once every outstanding
// operation has completed.
func (c *uringConn) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return nil
	}
	c.closing = true
	needCancel := c.recvLive && !c.recvDone
	c.wakeReadersLocked()
	c.wakeWritersLocked()
	c.maybeFinalizeLocked()
	c.mu.Unlock()
	if needCancel {
		c.eng.ring.submit(func() error {
			sqe, err := c.eng.ring.getSQE()
			if err != nil {
				return err
			}
			sqe.opcode = opAsyncCancel
			sqe.addr = udFor(udTagStreamRecv, c.id)
			sqe.userData = udFor(udTagCancel, c.id)
			return nil
		})
	}
	return nil
}

// maybeFinalizeLocked releases the fd and registration once the conn is
// closing and no operation can still reference it. c.mu held.
func (c *uringConn) maybeFinalizeLocked() {
	if c.finalized || !c.closing || !c.recvDone || c.wInflight > 0 {
		return
	}
	c.finalized = true
	var bids []uint16
	for i := c.segHead; i < len(c.segs); i++ {
		bids = append(bids, c.segs[i].bid)
	}
	c.segs = nil
	c.segHead = 0
	c.file.Close()
	eng := c.eng
	id := c.id
	go func() {
		eng.mu.Lock()
		delete(eng.conns, id)
		delete(eng.rearm, id)
		eng.mu.Unlock()
		eng.returnBufs(bids)
	}()
}

// teardown is the engine-shutdown path: the ring is gone, so no completion
// will ever arrive; just release the fd and unblock everyone.
func (c *uringConn) teardown() {
	c.mu.Lock()
	if !c.closing {
		c.closing = true
	}
	c.recvDone = true
	c.recvLive = false
	c.wInflight = 0
	if c.rerr == nil {
		c.rerr = net.ErrClosed
	}
	if c.werr == nil {
		c.werr = net.ErrClosed
	}
	fin := c.finalized
	c.finalized = true
	c.wakeReadersLocked()
	c.wakeWritersLocked()
	c.mu.Unlock()
	if !fin {
		c.file.Close()
	}
}
