// I/O engine selection. The transport layer offers three submission models
// for the same socket APIs:
//
//   - portable: one blocking syscall per operation through the net package —
//     the paper-faithful baseline, available everywhere.
//   - batch: recvmmsg/sendmmsg datagram batching and writev group commit
//     (PR 4/PR 6), amortizing one syscall over a batch. Linux amd64/arm64;
//     degrades to portable elsewhere.
//   - uring: io_uring submission/completion rings — multishot receives with
//     registered buffer rings, batched sends per ring flush — so steady-state
//     packet I/O approaches zero syscalls per message. Linux amd64/arm64
//     with a runtime probe; degrades to batch when the kernel or seccomp
//     denies io_uring_setup.
//
// Engines change how bytes cross the kernel boundary, never what bytes are
// delivered: the parity suite pins byte-identical behaviour between them.
package transport

import "fmt"

// IOEngine names a kernel I/O submission model.
type IOEngine string

// Supported engines. The empty string means EngineBatch: the batched paths
// are themselves opt-in per call site (BatchSize, EnableCoalesce), so the
// default engine preserves existing behaviour bit for bit.
const (
	EnginePortable IOEngine = "portable"
	EngineBatch    IOEngine = "batch"
	EngineUring    IOEngine = "uring"
)

// ParseEngine normalizes a -io-engine flag value. The empty string selects
// the batch default.
func ParseEngine(s string) (IOEngine, error) {
	switch IOEngine(s) {
	case "", EngineBatch:
		return EngineBatch, nil
	case EnginePortable:
		return EnginePortable, nil
	case EngineUring:
		return EngineUring, nil
	}
	return "", fmt.Errorf("transport: unknown io engine %q (want portable, batch, or uring)", s)
}

// UringSupported reports whether the io_uring engine can be armed here:
// the compile target supports it and the runtime probe (an io_uring_setup
// attempt, cached) succeeded.
func UringSupported() bool {
	ok, _, _ := UringProbeInfo()
	return ok
}

// UringProbeInfo exposes the cached startup probe: whether io_uring is
// usable, the kernel's advertised feature flags, and — when unusable — the
// reason (for the explicit CI skip line and the gosip_io_engine gauge).
func UringProbeInfo() (ok bool, features uint32, reason string) {
	return uringProbeInfo()
}

// SetUringForceDenied makes the probe report failure regardless of kernel
// support, returning the previous setting. Test hook for the probe-denied
// fallback suite; takes effect for sockets opened after the call.
func SetUringForceDenied(v bool) bool {
	return setUringForceDenied(v)
}

// Engine reports which I/O engine this socket actually armed (after
// probing and fallback), for startup logs and experiment cell labels: uring
// when the ring is live, batch when the mmsg fast path is, and portable
// when every call is a single blocking syscall.
func (s *UDPSocket) Engine() IOEngine {
	if s.uring != nil {
		return EngineUring
	}
	if s.mmsg {
		return EngineBatch
	}
	return EnginePortable
}
