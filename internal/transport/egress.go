package transport

import (
	"net"
	"sync"
	"time"

	"gosip/internal/metrics"
)

// DefaultEgressLinger is the flush deadline for a partially filled egress
// batch. Microsecond-scale: long enough for a worker's burst of responses
// to pile into one sendmmsg, short enough to be invisible next to the
// workload's round-trip times.
const DefaultEgressLinger = 200 * time.Microsecond

// Egress is an outbound datagram queue in front of one UDP socket. Sends
// enqueue; the queue drains through sendmmsg when it fills (flush-full),
// when the owning worker finishes its receive batch (flush-drain), or when
// the linger deadline passes (flush-linger, covering timer retransmissions
// and stragglers). Each flush reason has its own counter, and batch
// occupancy lands in the socket's send-occupancy histogram, so the
// experiment can see exactly how the amortization happened.
//
// Enqueue copies the datagram's bytes into a recycled buffer: callers
// (the proxy's pooled messages) reuse their serialization buffers the
// moment the send call returns, so a deferred send must not alias them.
//
// Writes after Close fall through to the socket's single-datagram path, so
// late timer sends degrade gracefully instead of erroring.
type Egress struct {
	sock   *UDPSocket
	bw     *BatchWriter
	max    int
	linger time.Duration

	mu     sync.Mutex
	queue  []Datagram
	free   [][]byte // recycled copy buffers
	armed  bool     // a linger flush is scheduled
	closed bool
	err    error // sticky send error

	wake chan struct{}
	done chan struct{}

	flushFull, flushDrain, flushLinger, flushClose *metrics.Counter
}

// maxFreeEgressBufs bounds the recycle list: enough for a full queue plus
// a batch in flight.
func (e *Egress) maxFree() int { return 2 * e.max }

// NewEgress builds an egress queue of the given batch size over sock.
// linger ≤ 0 selects DefaultEgressLinger. The profile wires the
// flush-reason counters (nil profile = uninstrumented).
func NewEgress(sock *UDPSocket, batch int, linger time.Duration, prof *metrics.Profile) *Egress {
	if batch < 1 {
		batch = 1
	}
	if batch > MaxBatch {
		batch = MaxBatch
	}
	if linger <= 0 {
		linger = DefaultEgressLinger
	}
	e := &Egress{
		sock:   sock,
		bw:     sock.NewBatchWriter(batch),
		max:    batch,
		linger: linger,
		queue:  make([]Datagram, 0, batch),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if prof != nil {
		e.flushFull = prof.Counter(metrics.MetricEgressFlushFull)
		e.flushDrain = prof.Counter(metrics.MetricEgressFlushDrain)
		e.flushLinger = prof.Counter(metrics.MetricEgressFlushLinger)
		e.flushClose = prof.Counter(metrics.MetricEgressFlushClose)
	}
	go e.lingerLoop()
	return e
}

// Enqueue queues one datagram, copying data. It returns the queue's sticky
// error, so a dead socket surfaces on the send path just as it would
// unbatched.
func (e *Egress) Enqueue(data []byte, dst *net.UDPAddr) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return e.sock.WriteTo(data, dst)
	}
	var buf []byte
	if n := len(e.free); n > 0 {
		buf = e.free[n-1]
		e.free = e.free[:n-1]
	}
	buf = append(buf[:0], data...)
	e.queue = append(e.queue, Datagram{Data: buf, Dst: dst})
	if len(e.queue) >= e.max {
		e.flushLocked(e.flushFull)
	} else if !e.armed {
		e.armed = true
		select {
		case e.wake <- struct{}{}:
		default:
		}
	}
	err := e.err
	e.mu.Unlock()
	return err
}

// Drain flushes whatever is queued. Batch workers call it after processing
// each receive batch: batch in, one sendmmsg out.
func (e *Egress) Drain() {
	e.mu.Lock()
	if !e.closed {
		e.flushLocked(e.flushDrain)
	}
	e.mu.Unlock()
}

// Err returns the sticky send error, if any.
func (e *Egress) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close flushes the queue a final time and stops the linger goroutine.
// The socket itself is not closed.
func (e *Egress) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.flushLocked(e.flushClose)
	e.closed = true
	e.mu.Unlock()
	close(e.done)
}

// flushLocked sends the queue with one WriteBatch (mu held across the
// syscall: the only contenders are the owning worker and the linger
// goroutine, and serializing them here is what makes the batch atomic).
func (e *Egress) flushLocked(reason *metrics.Counter) {
	if len(e.queue) == 0 {
		return
	}
	if err := e.sock.WriteBatch(e.bw, e.queue); err != nil && e.err == nil {
		e.err = err
	}
	reason.Inc()
	for _, d := range e.queue {
		if len(e.free) < e.maxFree() {
			e.free = append(e.free, d.Data[:0])
		}
	}
	e.queue = e.queue[:0]
}

// lingerLoop is the flush-of-last-resort: woken by the first enqueue into
// an empty, unarmed queue, it waits out the linger and flushes whatever is
// there. Timer-driven retransmissions, which have no worker batch to ride
// on, leave on this path.
func (e *Egress) lingerLoop() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-e.done:
			return
		case <-e.wake:
		}
		timer.Reset(e.linger)
		select {
		case <-e.done:
			if !timer.Stop() {
				<-timer.C
			}
			return
		case <-timer.C:
		}
		e.mu.Lock()
		e.armed = false
		if !e.closed {
			e.flushLocked(e.flushLinger)
		}
		e.mu.Unlock()
	}
}
