package transport

import (
	"io"
	"net"
	"testing"
	"time"

	"gosip/internal/metrics"
)

// The engine benchmarks extend the PR 4 syscalls/op series to the uring
// engine and the TLS stream layer, so every transport × engine cell
// reports the same metric pair (ns/op, syscalls/op) and benchstat can
// compare them directly.

// benchUDPRoundtripUring is benchUDPRoundtrip on the uring engine: the
// submit and wait io_uring_enter calls are accounted in the same
// send/recv syscall counters, so syscalls/op means the same thing —
// kernel crossings per datagram round-trip.
func benchUDPRoundtripUring(b *testing.B, batch int) {
	if !UringSupported() {
		b.Skip("no io_uring")
	}
	prof := metrics.NewProfile()
	sock, err := ListenUDPOptions("127.0.0.1:0", UDPOptions{
		Engine:    EngineUring,
		BatchSize: batch,
		RcvBuf:    1 << 20,
		Profile:   prof,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sock.Close()
	dst := sock.LocalAddr()

	wire := testMsg(1).Serialize()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()

	bw := sock.NewBatchWriter(batch)
	br := sock.NewBatchReader(batch)
	dgs := make([]Datagram, batch)
	for i := range dgs {
		dgs[i] = Datagram{Data: wire, Dst: dst}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		k := batch
		if rem := b.N - i; rem < k {
			k = rem
		}
		if err := sock.WriteBatch(bw, dgs[:k]); err != nil {
			b.Fatal(err)
		}
		for got := 0; got < k; {
			n, err := sock.ReadBatch(br)
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
	b.StopTimer()
	benchSyscallsPerOp(b, prof, b.N)
}

func BenchmarkUDPRoundtripUring(b *testing.B)        { benchUDPRoundtripUring(b, 1) }
func BenchmarkUDPRoundtripUringBatch32(b *testing.B) { benchUDPRoundtripUring(b, 32) }

// BenchmarkStreamWriteContendedUring is benchStreamWrite on an engine-
// backed conn: contended writers group-commit through one in-flight
// SENDMSG, and syscalls/op is submission flushes per message.
func BenchmarkStreamWriteContendedUring(b *testing.B) {
	if !UringSupported() {
		b.Skip("no io_uring")
	}
	prof := metrics.NewProfile()
	eng, err := NewStreamEngine(StreamEngineOptions{Profile: prof})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	ln, err := eng.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()
	client, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	go io.Copy(io.Discard, client)
	var srv net.Conn
	select {
	case srv = <-accepted:
	case <-time.After(5 * time.Second):
		b.Fatal("accept timed out")
	}
	defer srv.Close()

	wire := testMsg(1).Serialize()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := srv.Write(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	calls := prof.Counter(metrics.MetricTCPWriteCalls).Value()
	msgs := prof.Counter(metrics.MetricTCPWriteMsgs).Value()
	b.ReportMetric(float64(calls)/float64(msgs), "syscalls/op")
}

// benchTLSStreamWrite is benchStreamWrite with the TLS layer in place:
// the same contended-send shape, measured above crypto/tls, so the
// syscalls/op column lines up with the plain-TCP benchmarks. Coalescing
// matters more here — every write call that is saved also saves a TLS
// record seal.
func benchTLSStreamWrite(b *testing.B, coalesce bool) {
	srvCtx, cliCtx := newTLSPair(b, TLSOptions{}, TLSOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		tc := srvCtx.Server(nc)
		io.Copy(io.Discard, tc)
		tc.Close()
	}()
	nc, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	client := cliCtx.Client(nc, ln.Addr().String())
	if err := client.Handshake(); err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	prof := metrics.NewProfile()
	sc := NewStreamConn(client)
	sc.InstrumentWrites(prof.Counter(metrics.MetricTCPWriteCalls), prof.Counter(metrics.MetricTCPWriteMsgs))
	if coalesce {
		sc.EnableCoalesce()
	}

	wire := testMsg(1).Serialize()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := sc.WriteRaw(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	calls := prof.Counter(metrics.MetricTCPWriteCalls).Value()
	msgs := prof.Counter(metrics.MetricTCPWriteMsgs).Value()
	b.ReportMetric(float64(calls)/float64(msgs), "syscalls/op")
}

func BenchmarkTLSStreamWriteContended(b *testing.B)          { benchTLSStreamWrite(b, false) }
func BenchmarkTLSStreamWriteContendedCoalesced(b *testing.B) { benchTLSStreamWrite(b, true) }
