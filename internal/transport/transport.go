// Package transport provides the thin network layer under the SIP proxy:
// a UDP socket that multiple symmetric workers can receive from
// concurrently (OpenSER's UDP architecture relies on the kernel
// distributing datagrams among processes blocked in recvfrom), and a
// framed, write-locked wrapper for TCP stream connections.
//
// On Linux the UDP socket additionally offers batched receive and send
// paths (recvmmsg/sendmmsg — see batch.go) and SO_REUSEPORT sharding, so
// per-datagram syscall cost amortizes across a batch and workers need not
// contend on one file descriptor. Both are opt-in: the defaults preserve
// the paper-faithful one-syscall-per-message behaviour bit for bit.
package transport

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"syscall"
	"time"

	"gosip/internal/metrics"
	"gosip/internal/sipmsg"
)

// Kind names a transport protocol.
type Kind string

// Supported transports.
const (
	UDP Kind = "UDP"
	TCP Kind = "TCP"
)

// MaxDatagram is the largest UDP datagram the proxy accepts. SIP messages
// in this workload are well under the conventional 1500-byte MTU, but the
// limit accommodates path-MTU-free loopback experiments.
const MaxDatagram = 64 << 10

// MaxBatch bounds the per-call datagram count of the batched I/O paths.
const MaxBatch = 512

// Packet is one datagram received on a UDP socket.
type Packet struct {
	Data []byte
	Src  *net.UDPAddr

	// buf is the pool slot backing Data for single-packet reads; nil for
	// packets produced by a BatchReader, which owns its buffers.
	buf *[]byte
	// ubid is 1 + the uring ingress buffer id backing Data, or 0 when Data
	// is not a registered-ring slice. Release hands the buffer back.
	ubid uint32
}

// UDPOptions tunes a UDP SIP socket beyond the paper-faithful defaults.
// The zero value reproduces the baseline socket exactly.
type UDPOptions struct {
	// BatchSize > 1 arms the batched ReadBatch/WriteBatch paths with this
	// per-call datagram budget (Linux recvmmsg/sendmmsg where available,
	// looped single-packet calls elsewhere).
	BatchSize int
	// ReusePort binds with SO_REUSEPORT so several sockets can share one
	// port and the kernel load-balances datagrams between them. Returns an
	// error on platforms without the option.
	ReusePort bool
	// RcvBuf/SndBuf request SO_RCVBUF/SO_SNDBUF sizes (0 = kernel default).
	RcvBuf, SndBuf int
	// ForceGeneric disables the mmsg fast path even where available — the
	// hook the batch-parity test uses to run both paths on one platform.
	ForceGeneric bool
	// Profile receives the socket's syscall/occupancy instrumentation.
	// Nil is valid: counters become no-ops.
	Profile *metrics.Profile

	// Engine selects the I/O submission model ("" = EngineBatch, which
	// preserves the default behaviour — batching stays opt-in per call).
	// EngineUring arms an io_uring attachment when the runtime probe allows
	// it and degrades to the batch engine otherwise; EnginePortable pins
	// one blocking syscall per operation even where mmsg is available.
	Engine IOEngine
	// UringRing overrides the submission-queue depth (0 = scale from
	// BatchSize, clamped to [64, 1024]).
	UringRing int
	// UringBufs overrides the ingress buffer-ring population (0 = scale
	// from BatchSize, clamped to [64, 2048]; rounded up to a power of two).
	UringBufs int
	// UringBufSize overrides the ingress buffer size in bytes (0 = 4096).
	// Datagrams larger than a buffer are truncated and counted.
	UringBufSize int
}

// UDPSocket wraps a net.UDPConn for SIP use. ReadPacket may be called from
// many goroutines at once: the kernel hands each datagram to exactly one
// blocked reader, which is precisely how OpenSER's symmetric UDP worker
// processes share a socket.
type UDPSocket struct {
	conn  *net.UDPConn
	rc    syscall.RawConn
	mmsg  bool            // recvmmsg/sendmmsg fast path armed
	is6   bool            // socket bound to an IPv6 address
	uring uringAttachment // completion-driven engine, nil unless armed

	bufPool sync.Pool // of *[]byte, each MaxDatagram long

	recvSyscalls *metrics.Counter
	recvMsgs     *metrics.Counter
	sendSyscalls *metrics.Counter
	sendMsgs     *metrics.Counter
	poolDropped  *metrics.Counter
	recvOcc      *metrics.Histogram
	sendOcc      *metrics.Histogram
}

// ListenUDP opens a UDP SIP socket on addr (e.g. "127.0.0.1:0") with the
// baseline (unbatched, unshared) configuration.
func ListenUDP(addr string) (*UDPSocket, error) {
	return ListenUDPOptions(addr, UDPOptions{})
}

// ListenUDPOptions opens a UDP SIP socket with explicit tuning.
func ListenUDPOptions(addr string, o UDPOptions) (*UDPSocket, error) {
	if o.BatchSize > MaxBatch {
		return nil, fmt.Errorf("transport: batch size %d exceeds max %d", o.BatchSize, MaxBatch)
	}
	if o.ReusePort && !reusePortAvailable {
		return nil, fmt.Errorf("transport: SO_REUSEPORT is not supported on %s", runtime.GOOS)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	var c *net.UDPConn
	if o.ReusePort {
		c, err = listenReusePort(ua)
	} else {
		c, err = net.ListenUDP("udp", ua)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", addr, err)
	}
	if o.RcvBuf > 0 {
		if err := c.SetReadBuffer(o.RcvBuf); err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: SO_RCVBUF %d: %w", o.RcvBuf, err)
		}
	}
	if o.SndBuf > 0 {
		if err := c.SetWriteBuffer(o.SndBuf); err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: SO_SNDBUF %d: %w", o.SndBuf, err)
		}
	}
	s := &UDPSocket{conn: c}
	s.bufPool.New = func() any {
		b := make([]byte, MaxDatagram)
		return &b
	}
	s.is6 = s.LocalAddr().IP.To4() == nil
	portable := o.ForceGeneric || o.Engine == EnginePortable
	if o.BatchSize > 1 && mmsgAvailable && !portable {
		rc, err := c.SyscallConn()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: raw conn: %w", err)
		}
		s.rc = rc
		s.mmsg = true
	}
	if p := o.Profile; p != nil {
		s.recvSyscalls = p.Counter(metrics.MetricUDPRecvSyscalls)
		s.recvMsgs = p.Counter(metrics.MetricUDPRecvMsgs)
		s.sendSyscalls = p.Counter(metrics.MetricUDPSendSyscalls)
		s.sendMsgs = p.Counter(metrics.MetricUDPSendMsgs)
		s.poolDropped = p.Counter(metrics.MetricUDPPoolDropped)
		s.recvOcc = p.Histogram(metrics.HistRecvBatch)
		s.sendOcc = p.Histogram(metrics.HistSendBatch)
	}
	if o.Engine == EngineUring && !portable {
		u, err := armUring(s, o)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: arm io_uring: %w", err)
		}
		s.uring = u // nil when the probe denied: batch/portable fallback
	}
	return s, nil
}

// uringAttachment is the per-socket half of the io_uring engine; the
// concrete type lives behind the linux build tag.
type uringAttachment interface {
	readBatch(br *BatchReader) (int, error)
	readPacket() (Packet, error)
	writeBatch(dgs []Datagram) error
	releaseBid(bid uint16)
	setDeadline(t time.Time)
	close()
}

// MmsgActive reports whether the recvmmsg/sendmmsg fast path is armed.
func (s *UDPSocket) MmsgActive() bool { return s.mmsg }

// ReusePortAvailable reports whether SO_REUSEPORT socket sharding is
// supported on this platform; ListenUDPOptions rejects ReusePort elsewhere.
func ReusePortAvailable() bool { return reusePortAvailable }

// BufferSizes reports the socket's effective SO_RCVBUF/SO_SNDBUF values as
// the kernel sees them (Linux doubles the requested size for bookkeeping).
// Zeroes mean the values could not be read on this platform.
func (s *UDPSocket) BufferSizes() (rcv, snd int) { return socketBufferSizes(s.conn) }

// LocalAddr returns the bound address.
func (s *UDPSocket) LocalAddr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// ReadPacket blocks for the next datagram. The returned Packet owns its
// buffer; call Release when done to recycle it.
func (s *UDPSocket) ReadPacket() (Packet, error) {
	if s.uring != nil {
		return s.uring.readPacket()
	}
	bp := s.bufPool.Get().(*[]byte)
	n, src, err := s.conn.ReadFromUDP(*bp)
	if err != nil {
		s.bufPool.Put(bp)
		return Packet{}, err
	}
	s.recvSyscalls.Inc()
	s.recvMsgs.Inc()
	s.recvOcc.Record(1)
	return Packet{Data: (*bp)[:n], Src: src, buf: bp}, nil
}

// Release returns a packet's buffer to the pool. Packets whose buffer the
// pool cannot recycle (produced elsewhere, or resized by the caller) are
// counted as dropped rather than silently discarded; packets from a
// BatchReader carry no pool buffer and are a no-op.
func (s *UDPSocket) Release(p Packet) {
	if p.ubid != 0 {
		if s.uring != nil {
			s.uring.releaseBid(uint16(p.ubid - 1))
		}
		return
	}
	if p.buf != nil {
		if cap(*p.buf) == MaxDatagram {
			s.bufPool.Put(p.buf)
			return
		}
		s.poolDropped.Inc()
		return
	}
	if p.Data != nil && cap(p.Data) == MaxDatagram {
		// A pool-sized buffer with no pool slot: constructed by hand (tests)
		// or copied between sockets. It cannot re-enter the pool.
		s.poolDropped.Inc()
	}
}

// WriteTo sends a datagram. UDP sends are atomic at the message level, so
// no locking is needed — the property the paper credits for UDP's
// synchronization-free send path.
func (s *UDPSocket) WriteTo(data []byte, dst *net.UDPAddr) error {
	s.sendSyscalls.Inc()
	s.sendMsgs.Inc()
	s.sendOcc.Record(1)
	_, err := s.conn.WriteToUDPAddrPort(data, udpAddrPort(dst))
	return err
}

// udpAddrPort converts a *net.UDPAddr to the allocation-free netip form,
// unmapping 4-in-6 addresses so AF_INET sockets accept them.
func udpAddrPort(a *net.UDPAddr) netip.AddrPort {
	ap := a.AddrPort()
	if addr := ap.Addr(); addr.Is4In6() {
		return netip.AddrPortFrom(addr.Unmap(), ap.Port())
	}
	return ap
}

// SetReadDeadline bounds blocking ReadPacket calls; the zero time removes
// the bound. Synchronous clients (the phone simulator) use this for
// retransmission timeouts.
func (s *UDPSocket) SetReadDeadline(t time.Time) error {
	if s.uring != nil {
		s.uring.setDeadline(t)
	}
	return s.conn.SetReadDeadline(t)
}

// Close closes the socket, unblocking all readers.
func (s *UDPSocket) Close() error {
	if s.uring != nil {
		s.uring.close()
	}
	return s.conn.Close()
}

// StreamConn wraps a TCP connection with SIP message framing on the read
// side and a mutex on the write side. The read side must only be used by
// one goroutine (the owning worker); the write side may be shared, which
// models OpenSER's "a connection may be written to by different sending
// processes" with user-level locking for atomic sends.
//
// With coalescing enabled (EnableCoalesce) concurrent writers group-commit:
// the first writer becomes the flusher and drains everything that queued
// behind it through one writev (net.Buffers), so N contended sends cost one
// syscall instead of N serialized ones.
type StreamConn struct {
	conn net.Conn
	rd   *sipmsg.Reader

	wmu      sync.Mutex
	coalesce bool
	wbusy    bool     // a flusher is mid-writev with wmu released
	werr     error    // sticky write error: the connection is dead
	pending  [][]byte // copies queued behind the active flusher
	scratch  [][]byte // header copies handed to writev (consumed by it)
	inflight [][]byte // original headers of scratch, for recycling
	free     [][]byte // recycled copy buffers

	writeCalls *metrics.Counter
	writeMsgs  *metrics.Counter
}

// maxFreeWriteBufs bounds the per-connection recycle list for coalesced
// write copies.
const maxFreeWriteBufs = 64

// NewStreamConn wraps an established TCP connection.
func NewStreamConn(c net.Conn) *StreamConn {
	return &StreamConn{conn: c, rd: sipmsg.NewReader(c)}
}

// InstrumentWrites wires write syscall/message counters (nil-safe).
// Call before the connection is shared between goroutines.
func (c *StreamConn) InstrumentWrites(calls, msgs *metrics.Counter) {
	c.writeCalls = calls
	c.writeMsgs = msgs
}

// EnableCoalesce turns on group-commit write coalescing. Call before the
// connection is shared between goroutines.
func (c *StreamConn) EnableCoalesce() { c.coalesce = true }

// CoalesceActive reports whether group-commit coalescing is armed, i.e.
// whether WriteRaw is itself an atomic group-committing send. Callers that
// hold an outer per-connection send lock (the IPC handle path) consult
// this to skip that lock: serializing writers before they reach WriteRaw
// would prevent them from ever contending inside it, which is exactly the
// condition group commit needs to batch.
func (c *StreamConn) CoalesceActive() bool { return c.coalesce }

// SetParseObserver forwards fn to the framing reader: it receives each
// delivered message and its parse-only time (blocked socket reads
// excluded). Set it before the connection's reader goroutine starts.
func (c *StreamConn) SetParseObserver(fn func(*sipmsg.Message, time.Duration)) {
	c.rd.SetParseObserver(fn)
}

// ReadMessage blocks until a complete SIP message arrives.
func (c *StreamConn) ReadMessage() (*sipmsg.Message, error) {
	return c.rd.ReadMessage()
}

// WriteMessage serializes and sends m atomically with respect to other
// writers of this StreamConn.
func (c *StreamConn) WriteMessage(m *sipmsg.Message) error {
	return c.WriteRaw(m.Serialize())
}

// WriteRaw sends pre-serialized bytes atomically. data is not retained
// past the call: if it must queue behind an in-progress writev it is
// copied first, because callers recycle serialization buffers the moment
// WriteRaw returns.
func (c *StreamConn) WriteRaw(data []byte) error {
	c.wmu.Lock()
	if !c.coalesce {
		defer c.wmu.Unlock()
		c.writeCalls.Inc()
		c.writeMsgs.Inc()
		_, err := c.conn.Write(data)
		return err
	}
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		return err
	}
	if c.wbusy {
		// A flusher is mid-writev: leave a copy for it and return. The
		// flusher guarantees it drains everything queued before it exits,
		// so the bytes are on their way — this is the group commit.
		buf := c.getCopyLocked(data)
		c.pending = append(c.pending, buf)
		c.wmu.Unlock()
		return nil
	}
	// Become the flusher: write own data (no copy needed — we hold the
	// caller's buffer until the write completes), then drain whatever
	// queued behind us while wmu was released.
	c.wbusy = true
	c.scratch = append(c.scratch[:0], data)
	for {
		bufs := net.Buffers(c.scratch)
		c.writeCalls.Inc()
		c.writeMsgs.Add(int64(len(bufs)))
		c.wmu.Unlock()
		_, err := bufs.WriteTo(c.conn)
		c.wmu.Lock()
		for _, b := range c.inflight {
			c.putCopyLocked(b)
		}
		c.inflight = c.inflight[:0]
		if err != nil && c.werr == nil {
			c.werr = err
		}
		if len(c.pending) == 0 || c.werr != nil {
			// Failed writes poison the connection: drop anything queued
			// (its writers were told nil, but the peer will reset — SIP
			// retransmission owns recovery) and surface the sticky error.
			for _, b := range c.pending {
				c.putCopyLocked(b)
			}
			c.pending = c.pending[:0]
			break
		}
		c.scratch = append(c.scratch[:0], c.pending...)
		c.inflight = append(c.inflight[:0], c.pending...)
		c.pending = c.pending[:0]
	}
	c.wbusy = false
	err := c.werr
	c.wmu.Unlock()
	return err
}

// getCopyLocked copies data into a recycled (or new) buffer. wmu held.
func (c *StreamConn) getCopyLocked(data []byte) []byte {
	var buf []byte
	if n := len(c.free); n > 0 {
		buf = c.free[n-1]
		c.free = c.free[:n-1]
	}
	return append(buf[:0], data...)
}

// putCopyLocked returns a copy buffer to the recycle list. wmu held.
func (c *StreamConn) putCopyLocked(b []byte) {
	if b == nil || len(c.free) >= maxFreeWriteBufs {
		return
	}
	c.free = append(c.free, b[:0])
}

// SetReadDeadline forwards to the underlying connection.
func (c *StreamConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *StreamConn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// LocalAddr returns the local address.
func (c *StreamConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// NetConn exposes the wrapped net.Conn (needed for fd extraction when
// passing sockets between "processes" over SCM_RIGHTS).
func (c *StreamConn) NetConn() net.Conn { return c.conn }

// Close closes the connection.
func (c *StreamConn) Close() error { return c.conn.Close() }

// DialTCP connects to a SIP server over TCP.
func DialTCP(addr string) (*StreamConn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %q: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// SIP messages are small and latency-sensitive.
		_ = tc.SetNoDelay(true)
	}
	return NewStreamConn(c), nil
}
