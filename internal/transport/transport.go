// Package transport provides the thin network layer under the SIP proxy:
// a UDP socket that multiple symmetric workers can receive from
// concurrently (OpenSER's UDP architecture relies on the kernel
// distributing datagrams among processes blocked in recvfrom), and a
// framed, write-locked wrapper for TCP stream connections.
package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gosip/internal/sipmsg"
)

// Kind names a transport protocol.
type Kind string

// Supported transports.
const (
	UDP Kind = "UDP"
	TCP Kind = "TCP"
)

// MaxDatagram is the largest UDP datagram the proxy accepts. SIP messages
// in this workload are well under the conventional 1500-byte MTU, but the
// limit accommodates path-MTU-free loopback experiments.
const MaxDatagram = 64 << 10

// Packet is one datagram received on a UDP socket.
type Packet struct {
	Data []byte
	Src  *net.UDPAddr
}

// UDPSocket wraps a net.UDPConn for SIP use. ReadPacket may be called from
// many goroutines at once: the kernel hands each datagram to exactly one
// blocked reader, which is precisely how OpenSER's symmetric UDP worker
// processes share a socket.
type UDPSocket struct {
	conn *net.UDPConn

	bufPool sync.Pool
}

// ListenUDP opens a UDP SIP socket on addr (e.g. "127.0.0.1:0").
func ListenUDP(addr string) (*UDPSocket, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	c, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", addr, err)
	}
	s := &UDPSocket{conn: c}
	s.bufPool.New = func() any { return make([]byte, MaxDatagram) }
	return s, nil
}

// LocalAddr returns the bound address.
func (s *UDPSocket) LocalAddr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// ReadPacket blocks for the next datagram. The returned Packet owns its
// buffer; call Release when done to recycle it.
func (s *UDPSocket) ReadPacket() (Packet, error) {
	buf := s.bufPool.Get().([]byte)
	n, src, err := s.conn.ReadFromUDP(buf)
	if err != nil {
		s.bufPool.Put(buf) //nolint:staticcheck // fixed-size buffer
		return Packet{}, err
	}
	return Packet{Data: buf[:n], Src: src}, nil
}

// Release returns a packet's buffer to the pool.
func (s *UDPSocket) Release(p Packet) {
	if cap(p.Data) == MaxDatagram {
		s.bufPool.Put(p.Data[:MaxDatagram]) //nolint:staticcheck
	}
}

// WriteTo sends a datagram. UDP sends are atomic at the message level, so
// no locking is needed — the property the paper credits for UDP's
// synchronization-free send path.
func (s *UDPSocket) WriteTo(data []byte, dst *net.UDPAddr) error {
	_, err := s.conn.WriteToUDP(data, dst)
	return err
}

// SetReadDeadline bounds blocking ReadPacket calls; the zero time removes
// the bound. Synchronous clients (the phone simulator) use this for
// retransmission timeouts.
func (s *UDPSocket) SetReadDeadline(t time.Time) error { return s.conn.SetReadDeadline(t) }

// Close closes the socket, unblocking all readers.
func (s *UDPSocket) Close() error { return s.conn.Close() }

// StreamConn wraps a TCP connection with SIP message framing on the read
// side and a mutex on the write side. The read side must only be used by
// one goroutine (the owning worker); the write side may be shared, which
// models OpenSER's "a connection may be written to by different sending
// processes" with user-level locking for atomic sends.
type StreamConn struct {
	conn net.Conn
	rd   *sipmsg.Reader

	wmu sync.Mutex
}

// NewStreamConn wraps an established TCP connection.
func NewStreamConn(c net.Conn) *StreamConn {
	return &StreamConn{conn: c, rd: sipmsg.NewReader(c)}
}

// SetParseObserver forwards fn to the framing reader: it receives the
// parse-only time of each delivered message (blocked socket reads
// excluded). Set it before the connection's reader goroutine starts.
func (c *StreamConn) SetParseObserver(fn func(time.Duration)) {
	c.rd.SetParseObserver(fn)
}

// ReadMessage blocks until a complete SIP message arrives.
func (c *StreamConn) ReadMessage() (*sipmsg.Message, error) {
	return c.rd.ReadMessage()
}

// WriteMessage serializes and sends m atomically with respect to other
// writers of this StreamConn.
func (c *StreamConn) WriteMessage(m *sipmsg.Message) error {
	data := m.Serialize()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.conn.Write(data)
	return err
}

// WriteRaw sends pre-serialized bytes atomically.
func (c *StreamConn) WriteRaw(data []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.conn.Write(data)
	return err
}

// SetReadDeadline forwards to the underlying connection.
func (c *StreamConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *StreamConn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// LocalAddr returns the local address.
func (c *StreamConn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// NetConn exposes the wrapped net.Conn (needed for fd extraction when
// passing sockets between "processes" over SCM_RIGHTS).
func (c *StreamConn) NetConn() net.Conn { return c.conn }

// Close closes the connection.
func (c *StreamConn) Close() error { return c.conn.Close() }

// DialTCP connects to a SIP server over TCP.
func DialTCP(addr string) (*StreamConn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %q: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// SIP messages are small and latency-sensitive.
		_ = tc.SetNoDelay(true)
	}
	return NewStreamConn(c), nil
}
