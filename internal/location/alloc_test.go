package location

import (
	"testing"
	"time"

	"gosip/internal/sipmsg"
)

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
}

// TestLookupAllocs pins the read path at zero allocations: the caller
// provides the result buffer, the list is kept pre-sorted so no sort.Slice
// closure is built, and nothing escapes. Every routed INVITE performs one
// lookup, so a single alloc here is a per-call GC tax at avalanche load.
func TestLookupAllocs(t *testing.T) {
	skipIfRace(t)
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
	s.Register("bob@x.com", mkBinding("10.0.0.2", 2), time.Hour, now)

	var buf [8]Binding
	got := testing.AllocsPerRun(1000, func() {
		bs, err := s.Lookup("bob@x.com", now, buf[:0])
		if err != nil || len(bs) != 2 {
			t.Fatal("Lookup failed during alloc run")
		}
	})
	if got != 0 {
		t.Errorf("Lookup allocates %.1f/op, want 0", got)
	}

	// Missing AORs must be free too.
	got = testing.AllocsPerRun(1000, func() {
		if _, err := s.Lookup("carol@x.com", now, buf[:0]); err != ErrNoBinding {
			t.Fatal("unexpected hit")
		}
	})
	if got != 0 {
		t.Errorf("Lookup miss allocates %.1f/op, want 0", got)
	}
}

// TestLookupOneAllocs pins the proxy's route-time lookup: the AOR key is
// assembled from the request URI in a stack buffer and probed with the
// compiler-elided map[string(buf)] form.
func TestLookupOneAllocs(t *testing.T) {
	skipIfRace(t)
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
	uri := sipmsg.URI{User: "bob", Host: "X.com", Port: 5060}

	got := testing.AllocsPerRun(1000, func() {
		if _, ok := s.LookupOne(uri, now); !ok {
			t.Fatal("LookupOne missed during alloc run")
		}
	})
	if got != 0 {
		t.Errorf("LookupOne allocates %.1f/op, want 0", got)
	}
}

// TestRegisterRefreshAllocs pins the registrar's steady state — an
// existing binding being refreshed — at zero allocations: the same-contact
// match is structural (no Contact.String() under the shard lock), the node
// is updated in place, and the wheel relink reuses the resident node.
func TestRegisterRefreshAllocs(t *testing.T) {
	skipIfRace(t)
	s := New()
	now := time.Now()
	b := mkBinding("10.0.0.1", 5062)
	s.Register("bob@x.com", b, time.Hour, now)

	got := testing.AllocsPerRun(1000, func() {
		s.Register("bob@x.com", b, time.Hour, now)
	})
	if got != 0 {
		t.Errorf("Register refresh allocates %.1f/op, want 0", got)
	}
}

// TestRegisterContactAllocs pins the full HandleRegister store path: key
// assembly from the To URI, shard hash, and in-place refresh.
func TestRegisterContactAllocs(t *testing.T) {
	skipIfRace(t)
	s := New()
	now := time.Now()
	to := sipmsg.URI{User: "bob", Host: "x.com"}
	b := mkBinding("10.0.0.1", 5062)
	s.RegisterContact(to, b, time.Hour, now)

	got := testing.AllocsPerRun(1000, func() {
		s.RegisterContact(to, b, time.Hour, now)
	})
	if got != 0 {
		t.Errorf("RegisterContact refresh allocates %.1f/op, want 0", got)
	}
}

// TestRegisterChurnAllocs pins the register/deregister/re-register cycle:
// after the pool warms up, node churn recycles shard-local nodes instead
// of allocating.
func TestRegisterChurnAllocs(t *testing.T) {
	skipIfRace(t)
	s := New()
	now := time.Now()
	b := mkBinding("10.0.0.1", 5062)
	// Warm the pool and the map bucket.
	for i := 0; i < 8; i++ {
		s.Register("bob@x.com", b, time.Hour, now)
		s.Register("bob@x.com", b, 0, now)
	}

	got := testing.AllocsPerRun(1000, func() {
		s.Register("bob@x.com", b, time.Hour, now)
		s.Register("bob@x.com", b, 0, now)
	})
	if got != 0 {
		t.Errorf("register/deregister cycle allocates %.1f/op, want 0", got)
	}
}
