package location

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gosip/internal/metrics"
	"gosip/internal/sipmsg"
)

// benchStore caches one pre-filled service per population size so the
// multi-invocation benchmark protocol (go test reruns the function with
// growing b.N) pays the million-binding pre-fill once, not per invocation.
type benchStore struct {
	svc             *Service
	users           []string
	bytesPerBinding float64
}

var benchStores = map[int]*benchStore{}

// getBenchStore builds (or returns) a service holding n bindings, measuring
// the store's marginal heap cost per binding across the pre-fill: node, wheel
// links, AOR index slot, and the store-owned key string. User strings are
// allocated before the baseline snapshot so only the store's own footprint is
// counted.
func getBenchStore(n int) *benchStore {
	if bs, ok := benchStores[n]; ok {
		return bs
	}
	bs := &benchStore{
		svc:   NewService(Options{}),
		users: make([]string, n),
	}
	for i := range bs.users {
		bs.users[i] = fmt.Sprintf("pf%d", i)
	}
	now := time.Now()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range bs.users {
		bs.svc.RegisterContact(
			sipmsg.URI{User: bs.users[i], Host: "bench.gosip"},
			Binding{
				Contact:   sipmsg.URI{User: bs.users[i], Host: "192.0.2.10", Port: 5060},
				Transport: "UDP",
				Source:    "192.0.2.10:5060",
			}, 24*time.Hour, now)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if n > 0 && after.HeapAlloc > before.HeapAlloc {
		bs.bytesPerBinding = float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
	}
	benchStores[n] = bs
	return bs
}

var benchPrefills = []int{100_000, 1_000_000}

// BenchmarkRegistrarRegister measures the steady-state re-REGISTER (binding
// refresh) rate against a large resident population — the avalanche's inner
// operation — and reports the store's resident bytes per binding. The hot
// path must stay allocation-free regardless of population.
func BenchmarkRegistrarRegister(b *testing.B) {
	for _, n := range benchPrefills {
		b.Run(fmt.Sprintf("prefill=%d", n), func(b *testing.B) {
			bs := getBenchStore(n)
			now := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := bs.users[i%n]
				bs.svc.RegisterContact(
					sipmsg.URI{User: u, Host: "bench.gosip"},
					Binding{
						Contact:   sipmsg.URI{User: u, Host: "192.0.2.10", Port: 5060},
						Transport: "UDP",
						Source:    "192.0.2.10:5060",
					}, 24*time.Hour, now)
			}
			b.StopTimer()
			b.ReportMetric(bs.bytesPerBinding, "bytes/binding")
		})
	}
}

// BenchmarkRegistrarLookup measures routing-side reads against the resident
// population, with a churn goroutine concurrently refreshing bindings — the
// proxy's view of the registrar mid-avalanche. Latency percentiles come from
// a log2 histogram, reported as p50-ns/p99-ns custom metrics.
func BenchmarkRegistrarLookup(b *testing.B) {
	for _, n := range benchPrefills {
		b.Run(fmt.Sprintf("prefill=%d/churn", n), func(b *testing.B) {
			bs := getBenchStore(n)
			var stop atomic.Bool
			churnDone := make(chan struct{})
			go func() {
				defer close(churnDone)
				now := time.Now()
				for i := 0; !stop.Load(); i++ {
					u := bs.users[(i*7919)%n]
					bs.svc.RegisterContact(
						sipmsg.URI{User: u, Host: "bench.gosip"},
						Binding{
							Contact:   sipmsg.URI{User: u, Host: "192.0.2.10", Port: 5060},
							Transport: "UDP",
							Source:    "192.0.2.10:5060",
						}, 24*time.Hour, now)
				}
			}()
			hist := new(metrics.Histogram)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := sipmsg.URI{User: bs.users[(i*104729)%n], Host: "bench.gosip"}
				t0 := time.Now()
				if _, ok := bs.svc.LookupOne(u, t0); !ok {
					b.Fatal("prefilled binding missing")
				}
				hist.Record(time.Since(t0))
			}
			b.StopTimer()
			stop.Store(true)
			<-churnDone
			snap := hist.Snapshot()
			b.ReportMetric(float64(snap.Quantile(0.50)), "p50-ns")
			b.ReportMetric(float64(snap.Quantile(0.99)), "p99-ns")
		})
	}
}
