package location

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"gosip/internal/metrics"
	"gosip/internal/sipmsg"
)

// TestConcurrentChurn is the avalanche in miniature: registering,
// refreshing, de-registering, looking up, and wheel-sweeping goroutines
// all hammer the same store. Run under -race it validates the shard
// locking; the invariant checks catch lost or duplicated bindings. The
// sweep goroutine uses real wall-clock nows while writers use short TTLs,
// so the wheel actually reclaims during the run.
func TestConcurrentChurn(t *testing.T) {
	for _, shards := range []int{1, 64} {
		shards := shards
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			t.Parallel()
			prof := metrics.NewProfile()
			s := NewService(Options{Shards: shards, Profile: prof, SweepInterval: time.Millisecond})
			defer s.Close()

			const (
				writers = 4
				readers = 2
				aors    = 64
				iters   = 400
			)
			aorName := func(i int) string { return "user" + strconv.Itoa(i) + "@churn.test" }

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						aor := aorName((w*iters + i) % aors)
						b := Binding{
							Contact:   sipmsg.URI{User: "u", Host: "10.0.0." + strconv.Itoa(w+1), Port: 5060 + w},
							Transport: "UDP",
							Source:    "10.0.0.9:5060",
						}
						switch i % 4 {
						case 0, 1:
							s.Register(aor, b, time.Hour, time.Now())
						case 2:
							// Millisecond TTL: reclaimed by the sweeper.
							s.Register(aor, b, time.Millisecond, time.Now())
						case 3:
							s.Register(aor, b, 0, time.Now())
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var buf [8]Binding
					for i := 0; i < iters*2; i++ {
						aor := aorName(i % aors)
						s.Lookup(aor, time.Now(), buf[:0])
						s.LookupOne(sipmsg.URI{User: "user" + strconv.Itoa(i%aors), Host: "churn.test"}, time.Now())
					}
				}(r)
			}
			wg.Wait()

			// Deregister everything that's left and verify the store drains
			// to empty: no lost, leaked, or double-counted nodes.
			now := time.Now()
			var buf [64]Binding
			for i := 0; i < aors; i++ {
				bs, err := s.Lookup(aorName(i), now, buf[:0])
				if err != nil {
					continue
				}
				for _, b := range bs {
					s.Register(aorName(i), Binding{Contact: b.Contact}, 0, now)
				}
			}
			s.Purge(now.Add(2 * time.Hour))
			if n := s.Bindings(); n != 0 {
				t.Errorf("Bindings = %d after full drain", n)
			}
			if n := s.Len(); n != 0 {
				t.Errorf("Len = %d after full drain", n)
			}
		})
	}
}
