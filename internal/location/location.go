// Package location implements the SIP location service and registrar
// (RFC 3261 §10): the mapping from an address-of-record ("bob@example.com")
// to the contact address(es) where the user can actually be reached. SIP
// proxies consult this service to route INVITEs; phones populate it with
// REGISTER transactions.
package location

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gosip/internal/sipmsg"
)

// Binding is one registered contact for an AOR.
type Binding struct {
	Contact sipmsg.URI
	// Transport the phone registered over; forwarding reuses it.
	Transport string
	// Source is the network address the REGISTER arrived from; forwarding
	// targets it directly (the "received" address), which is what matters
	// for phones behind per-experiment ephemeral ports.
	Source  string
	Expires time.Time
}

// Expired reports whether the binding has lapsed at now.
func (b Binding) Expired(now time.Time) bool { return !b.Expires.After(now) }

// Service is the shared location database. It is accessed concurrently by
// every worker, so it is guarded by a sharded RW mutex to keep lookup cost
// flat at high worker counts.
type Service struct {
	shards []shard
}

type shard struct {
	mu       sync.RWMutex
	bindings map[string][]Binding // key: AOR
}

// ErrNoBinding is returned when an AOR has no live binding.
var ErrNoBinding = errors.New("location: no binding")

// DefaultExpiry applies when a REGISTER carries no Expires header.
const DefaultExpiry = 3600 * time.Second

// New creates an empty location service.
func New() *Service {
	s := &Service{shards: make([]shard, 16)}
	for i := range s.shards {
		s.shards[i].bindings = make(map[string][]Binding)
	}
	return s
}

func (s *Service) shardFor(aor string) *shard {
	var h uint32 = 2166136261
	for i := 0; i < len(aor); i++ {
		h ^= uint32(aor[i])
		h *= 16777619
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// Register adds or refreshes a binding for the AOR. A zero ttl removes the
// binding (RFC 3261 "Expires: 0" de-registration).
func (s *Service) Register(aor string, b Binding, ttl time.Duration, now time.Time) {
	sh := s.shardFor(aor)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.bindings[aor]
	// Replace any binding with the same contact.
	out := list[:0]
	for _, old := range list {
		if old.Contact.String() != b.Contact.String() && !old.Expired(now) {
			out = append(out, old)
		}
	}
	if ttl > 0 {
		b.Expires = now.Add(ttl)
		out = append(out, b)
	}
	if len(out) == 0 {
		delete(sh.bindings, aor)
		return
	}
	sh.bindings[aor] = out
}

// Lookup returns the live bindings for an AOR, freshest first.
func (s *Service) Lookup(aor string, now time.Time) ([]Binding, error) {
	sh := s.shardFor(aor)
	sh.mu.RLock()
	list := sh.bindings[aor]
	var out []Binding
	for _, b := range list {
		if !b.Expired(now) {
			out = append(out, b)
		}
	}
	sh.mu.RUnlock()
	if len(out) == 0 {
		return nil, ErrNoBinding
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Expires.After(out[j].Expires) })
	return out, nil
}

// Len counts AORs with at least one (possibly expired) binding.
func (s *Service) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].bindings)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Purge drops expired bindings and empty AORs; returns bindings removed.
func (s *Service) Purge(now time.Time) int {
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for aor, list := range sh.bindings {
			out := list[:0]
			for _, b := range list {
				if b.Expired(now) {
					removed++
					continue
				}
				out = append(out, b)
			}
			if len(out) == 0 {
				delete(sh.bindings, aor)
			} else {
				sh.bindings[aor] = out
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// HandleRegister applies a REGISTER request to the service and returns the
// response to send. source is the network address the request arrived
// from; transport is "UDP" or "TCP".
func (s *Service) HandleRegister(req *sipmsg.Message, source, transport string, now time.Time) *sipmsg.Message {
	toVal, ok := req.Get("To")
	if !ok {
		return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
	}
	to, err := sipmsg.ParseNameAddr(toVal)
	if err != nil {
		return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
	}
	aor := to.URI.AOR()

	contactVal, ok := req.Get("Contact")
	if !ok {
		// Query-style REGISTER: report current bindings.
		return sipmsg.NewResponse(req, sipmsg.StatusOK, sipmsg.NewTag())
	}
	contact, err := sipmsg.ParseNameAddr(contactVal)
	if err != nil {
		return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
	}

	ttl := DefaultExpiry
	if v, ok := req.Get("Expires"); ok {
		secs, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || secs < 0 {
			return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
		}
		ttl = time.Duration(secs) * time.Second
	}
	s.Register(aor, Binding{
		Contact:   contact.URI,
		Transport: transport,
		Source:    source,
	}, ttl, now)
	resp := sipmsg.NewResponse(req, sipmsg.StatusOK, sipmsg.NewTag())
	resp.Add("Contact", contact.String())
	if ttl > 0 {
		resp.Add("Expires", strconv.Itoa(int(ttl/time.Second)))
	}
	return resp
}
