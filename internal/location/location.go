// Package location implements the SIP location service and registrar
// (RFC 3261 §10): the mapping from an address-of-record ("bob@example.com")
// to the contact address(es) where the user can actually be reached. SIP
// proxies consult this service to route INVITEs; phones populate it with
// REGISTER transactions.
//
// The store is built for millions of resident bindings: AORs hash to
// cache-line-padded shards (configurable power-of-two count) holding
// intrusive, pooled binding nodes, and expiry is driven by a per-shard
// single-level timing wheel, so de-registration by lapse is O(1) amortized
// — no stop-the-world scan ever runs on the serving path. The steady-state
// Register (refresh) and Lookup paths allocate nothing: keys derived from
// URIs are assembled in stack buffers and probed with the compiler-elided
// map[string(buf)] form, the same trick as transaction.MatchParts.
package location

import (
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gosip/internal/metrics"
	"gosip/internal/sipmsg"
	"gosip/internal/trace"
)

// Binding is one registered contact for an AOR.
type Binding struct {
	Contact sipmsg.URI
	// Transport the phone registered over; forwarding reuses it.
	Transport string
	// Source is the network address the REGISTER arrived from; forwarding
	// targets it directly (the "received" address), which is what matters
	// for phones behind per-experiment ephemeral ports.
	Source  string
	Expires time.Time
}

// Expired reports whether the binding has lapsed at now.
func (b Binding) Expired(now time.Time) bool { return !b.Expires.After(now) }

// binding is the resident representation: one intrusive node that lives
// simultaneously on its AOR's expiry-sorted list and on one expiry-wheel
// slot. Nodes are pooled per shard, so steady-state churn (register,
// expire, re-register) recycles memory instead of allocating.
type binding struct {
	aor       string // the shard map key; retained for wheel-driven removal
	contact   sipmsg.URI
	transport string
	source    string
	expiresNs int64 // unix nanoseconds

	// next links the per-AOR list, sorted by expiry descending (freshest
	// first), so Lookup copies a prefix and never sorts. The free list
	// reuses this field.
	next *binding

	// Wheel linkage: doubly linked so refresh and de-registration unlink
	// in O(1).
	wprev, wnext *binding
	slot         int16
	linked       bool
}

// ErrNoBinding is returned when an AOR has no live binding.
var ErrNoBinding = errors.New("location: no binding")

// DefaultExpiry applies when a REGISTER carries no Expires header.
const DefaultExpiry = 3600 * time.Second

// Wheel geometry: one level of 256 slots at a 1-second tick, a 256s
// horizon. Registrar expiry needs only second granularity (Expires is an
// integer-seconds header), and a binding beyond the horizon simply relinks
// each revolution — a 1-hour binding is touched ~14 times over its life,
// each touch O(1). A binding lapses at most one tick after its deadline,
// never before.
const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
)

const tickNs = int64(time.Second)

// maxFreePerShard bounds the per-shard node pool so a register avalanche
// followed by mass expiry doesn't pin its high-water memory forever.
const maxFreePerShard = 4096

const (
	fnvOffset = 2166136261
	fnvPrime  = 16777619
)

// Options configures the service.
type Options struct {
	// Shards is the shard count, rounded up to a power of two
	// (0 = DefaultShards, the historical fixed count).
	Shards int
	// Profile receives lock-wait time (lock.location), binding lifecycle
	// counters, and population gauges. Nil disables instrumentation.
	Profile *metrics.Profile
	// SweepInterval runs a background goroutine advancing the expiry
	// wheels this often (0 = no goroutine; expiry then happens on Purge).
	SweepInterval time.Duration
}

// DefaultShards is the shard count a zero Options.Shards resolves to.
const DefaultShards = 16

// Service is the shared location database. It is accessed concurrently by
// every worker, so state is sharded by AOR hash with contended lock waits
// charged to lock.location.
type Service struct {
	shards    []shard
	shardMask uint32

	lockWait     *metrics.Timer
	registered   *metrics.Counter
	refreshed    *metrics.Counter
	expired      *metrics.Counter
	deregistered *metrics.Counter
	bindings     atomic.Int64

	stop      chan struct{}
	closeOnce sync.Once
	sweeper   sync.WaitGroup
}

type shard struct {
	mu   sync.Mutex
	aors map[string]*binding // key: AOR; value: expiry-desc sorted list head

	// free is the recycled-node pool (chained via .next).
	free    *binding
	freeLen int

	// wheel holds one doubly linked list per slot; cur is the last tick
	// whose slot has been drained. Guarded by mu.
	wheel [wheelSlots]*binding
	cur   int64

	// pad keeps neighbouring shards' mutexes off one cache line.
	_ [40]byte
}

// New creates an empty location service with default options.
func New() *Service { return NewService(Options{}) }

// NewService creates an empty location service.
func NewService(opts Options) *Service {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	n = ceilPow2(n)
	s := &Service{
		shards:    make([]shard, n),
		shardMask: uint32(n - 1),
		stop:      make(chan struct{}),
	}
	cur := time.Now().UnixNano() / tickNs
	for i := range s.shards {
		s.shards[i].aors = make(map[string]*binding)
		s.shards[i].cur = cur
	}
	if p := opts.Profile; p != nil {
		s.lockWait = p.Timer(metrics.MetricLocLockWait)
		s.registered = p.Counter(metrics.MetricLocRegistered)
		s.refreshed = p.Counter(metrics.MetricLocRefreshed)
		s.expired = p.Counter(metrics.MetricLocExpired)
		s.deregistered = p.Counter(metrics.MetricLocDeregistered)
		p.SetGauge(metrics.GaugeLocBindings, func() float64 { return float64(s.Bindings()) })
		p.SetGauge(metrics.GaugeLocAORs, func() float64 { return float64(s.Len()) })
	}
	if opts.SweepInterval > 0 {
		s.sweeper.Add(1)
		go s.run(opts.SweepInterval)
	}
	return s
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ShardCount reports how many shards AORs spread across.
func (s *Service) ShardCount() int { return len(s.shards) }

func (s *Service) run(interval time.Duration) {
	defer s.sweeper.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.Purge(time.Now())
		case <-s.stop:
			return
		}
	}
}

// Close stops the background sweeper, if any. Idempotent.
func (s *Service) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.sweeper.Wait()
}

// lock acquires sh.mu, charging only contended waits to lock.location —
// the TryLock fast path keeps the uncontended case at one atomic.
func (s *Service) lock(sh *shard) {
	if sh.mu.TryLock() {
		return
	}
	t0 := time.Now()
	sh.mu.Lock()
	if s.lockWait != nil {
		s.lockWait.AddDuration(time.Since(t0))
	}
}

func (s *Service) shardFor(key []byte) *shard {
	var h uint32 = fnvOffset
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime
	}
	return &s.shards[h&s.shardMask]
}

func (s *Service) shardForString(aor string) *shard {
	var h uint32 = fnvOffset
	for i := 0; i < len(aor); i++ {
		h ^= uint32(aor[i])
		h *= fnvPrime
	}
	return &s.shards[h&s.shardMask]
}

// appendAORKey assembles the canonical AOR key ("user@lowercase-host", or
// just the host when the URI has no user part) into buf. It matches
// URI.AOR() byte-for-byte for ASCII hosts — the only kind this system
// generates — without materializing a string.
func appendAORKey(buf []byte, u sipmsg.URI) []byte {
	if u.User != "" {
		buf = append(buf, u.User...)
		buf = append(buf, '@')
	}
	for i := 0; i < len(u.Host); i++ {
		c := u.Host[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf = append(buf, c)
	}
	return buf
}

// sameContact compares a resident node's contact against a URI
// structurally (user, case-insensitive host, port) — no String()
// materialization under the shard lock.
func sameContact(n *binding, u sipmsg.URI) bool {
	return n.contact.User == u.User &&
		n.contact.Port == u.Port &&
		strings.EqualFold(n.contact.Host, u.Host)
}

// --- wheel plumbing (callers hold sh.mu) ---

// linkTick is the wheel tick a binding files under: expiry rounded up to
// the next tick boundary, so a binding is never reclaimed early.
func linkTick(expiresNs int64) int64 { return (expiresNs + tickNs - 1) / tickNs }

func (sh *shard) wheelLink(n *binding) {
	slot := int16(linkTick(n.expiresNs) & wheelMask)
	n.slot = slot
	head := sh.wheel[slot]
	n.wprev = nil
	n.wnext = head
	if head != nil {
		head.wprev = n
	}
	sh.wheel[slot] = n
	n.linked = true
}

func (sh *shard) wheelUnlink(n *binding) {
	if !n.linked {
		return
	}
	if n.wprev != nil {
		n.wprev.wnext = n.wnext
	} else {
		sh.wheel[n.slot] = n.wnext
	}
	if n.wnext != nil {
		n.wnext.wprev = n.wprev
	}
	n.wprev, n.wnext = nil, nil
	n.linked = false
}

// advance drains every slot between the shard's clock and now, removing
// lapsed bindings and relinking still-live ones for a later revolution.
// Visits at most one full revolution regardless of how far the clock
// jumped, so a long-idle shard catches up in O(slots + resident). Returns
// the number of bindings reclaimed. Callers hold sh.mu.
func (sh *shard) advance(s *Service, nowNs int64) int {
	target := nowNs / tickNs
	steps := target - sh.cur
	if steps <= 0 {
		return 0
	}
	if steps > wheelSlots {
		steps = wheelSlots
	}
	removed := 0
	for i := int64(1); i <= steps; i++ {
		slot := (sh.cur + i) & wheelMask
		// Detach the whole list first: live bindings may relink into this
		// very slot for a future revolution.
		n := sh.wheel[slot]
		sh.wheel[slot] = nil
		for n != nil {
			next := n.wnext
			n.wprev, n.wnext, n.linked = nil, nil, false
			if n.expiresNs <= nowNs {
				sh.removeFromAOR(n)
				sh.recycle(n)
				removed++
			} else {
				sh.wheelLink(n)
			}
			n = next
		}
	}
	sh.cur = target
	if removed > 0 {
		s.expired.Add(int64(removed))
		s.bindings.Add(int64(-removed))
	}
	return removed
}

// removeFromAOR unlinks n from its AOR's list, deleting the map entry when
// the list empties. Callers hold sh.mu.
func (sh *shard) removeFromAOR(n *binding) {
	head := sh.aors[n.aor]
	if head == n {
		if n.next == nil {
			delete(sh.aors, n.aor)
		} else {
			sh.aors[n.aor] = n.next
		}
		n.next = nil
		return
	}
	for p := head; p != nil; p = p.next {
		if p.next == n {
			p.next = n.next
			n.next = nil
			return
		}
	}
}

// recycle clears a node and returns it to the shard pool (bounded so an
// avalanche's high-water mark is not pinned forever).
func (sh *shard) recycle(n *binding) {
	*n = binding{}
	if sh.freeLen >= maxFreePerShard {
		return
	}
	n.next = sh.free
	sh.free = n
	sh.freeLen++
}

func (sh *shard) newNode() *binding {
	if n := sh.free; n != nil {
		sh.free = n.next
		sh.freeLen--
		n.next = nil
		return n
	}
	return &binding{}
}

// insertSorted files n into its AOR's list keeping expiry-descending
// order. Callers hold sh.mu; n.aor must be the map key already in use.
func (sh *shard) insertSorted(n *binding) {
	head := sh.aors[n.aor]
	if head == nil || head.expiresNs <= n.expiresNs {
		n.next = head
		sh.aors[n.aor] = n
		return
	}
	p := head
	for p.next != nil && p.next.expiresNs > n.expiresNs {
		p = p.next
	}
	n.next = p.next
	p.next = n
}

// registerLocked applies one REGISTER action to a shard whose lock is
// held: refresh or remove the same-contact binding, or insert a new node.
// mkKey materializes the AOR string only when a first-time insertion
// actually needs a map key.
func (s *Service) registerLocked(sh *shard, head *binding, mkKey func() string, b Binding, ttl time.Duration, now time.Time) {
	for n := head; n != nil; n = n.next {
		if !sameContact(n, b.Contact) {
			continue
		}
		if ttl <= 0 {
			// Expires: 0 de-registration, O(1) on the wheel.
			sh.wheelUnlink(n)
			sh.removeFromAOR(n)
			sh.recycle(n)
			s.deregistered.Inc()
			s.bindings.Add(-1)
			return
		}
		// Refresh in place: reposition in the sorted list and refile on
		// the wheel. No allocation.
		sh.removeFromAOR(n)
		n.transport = b.Transport
		n.source = b.Source
		n.expiresNs = now.Add(ttl).UnixNano()
		sh.insertSorted(n)
		sh.wheelUnlink(n)
		sh.wheelLink(n)
		s.refreshed.Inc()
		return
	}
	if ttl <= 0 {
		return // removing a binding that isn't there
	}
	n := sh.newNode()
	n.aor = mkKey()
	n.contact = b.Contact
	n.transport = b.Transport
	n.source = b.Source
	n.expiresNs = now.Add(ttl).UnixNano()
	sh.insertSorted(n)
	sh.wheelLink(n)
	s.registered.Inc()
	s.bindings.Add(1)
}

// Register adds or refreshes a binding for the AOR. A zero ttl removes the
// binding (RFC 3261 "Expires: 0" de-registration). The refresh path
// allocates nothing.
func (s *Service) Register(aor string, b Binding, ttl time.Duration, now time.Time) {
	sh := s.shardForString(aor)
	s.lock(sh)
	head := sh.aors[aor]
	s.registerLocked(sh, head, func() string { return aor }, b, ttl, now)
	sh.mu.Unlock()
}

// RegisterContact is Register keyed by the To URI directly: the AOR key is
// assembled in a stack buffer, so a refresh — the registrar's steady state
// — allocates nothing. Only a first-time insertion materializes the key
// string.
func (s *Service) RegisterContact(to sipmsg.URI, b Binding, ttl time.Duration, now time.Time) {
	var stack [96]byte
	key := appendAORKey(stack[:0], to)
	sh := s.shardFor(key)
	s.lock(sh)
	head := sh.aors[string(key)] // compiler-elided conversion
	s.registerLocked(sh, head, func() string { return string(key) }, b, ttl, now)
	sh.mu.Unlock()
}

// appendLive copies the AOR list's live prefix into buf as exported
// Bindings. The list is expiry-descending, so the first lapsed node ends
// the copy. Callers hold the shard lock.
func appendLive(buf []Binding, head *binding, nowNs int64) []Binding {
	for n := head; n != nil && n.expiresNs > nowNs; n = n.next {
		buf = append(buf, Binding{
			Contact:   n.contact,
			Transport: n.transport,
			Source:    n.source,
			Expires:   time.Unix(0, n.expiresNs),
		})
	}
	return buf
}

// Lookup returns the live bindings for an AOR, freshest first, appended to
// buf. Pass a buffer with spare capacity (e.g. a stack-backed slice) and
// the call allocates nothing; the list is maintained in expiry order, so
// no sort runs.
func (s *Service) Lookup(aor string, now time.Time, buf []Binding) ([]Binding, error) {
	sh := s.shardForString(aor)
	nowNs := now.UnixNano()
	s.lock(sh)
	out := appendLive(buf, sh.aors[aor], nowNs)
	sh.mu.Unlock()
	if len(out) == len(buf) {
		return buf, ErrNoBinding
	}
	return out, nil
}

// LookupOne returns the freshest live binding for the URI's AOR. The key
// is assembled in a stack buffer and probed in place, so the proxy's
// route-time lookup allocates nothing.
func (s *Service) LookupOne(u sipmsg.URI, now time.Time) (Binding, bool) {
	var stack [96]byte
	key := appendAORKey(stack[:0], u)
	sh := s.shardFor(key)
	nowNs := now.UnixNano()
	s.lock(sh)
	n := sh.aors[string(key)] // compiler-elided conversion
	if n == nil || n.expiresNs <= nowNs {
		sh.mu.Unlock()
		return Binding{}, false
	}
	b := Binding{
		Contact:   n.contact,
		Transport: n.transport,
		Source:    n.source,
		Expires:   time.Unix(0, n.expiresNs),
	}
	sh.mu.Unlock()
	return b, true
}

// Len counts AORs with at least one (possibly lapsed but not yet swept)
// binding.
func (s *Service) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		s.lock(sh)
		n += len(sh.aors)
		sh.mu.Unlock()
	}
	return n
}

// Bindings returns the resident binding population.
func (s *Service) Bindings() int { return int(s.bindings.Load()) }

// Purge advances every shard's expiry wheel to now and returns how many
// bindings were reclaimed. This is the sweeper's entry point — amortized
// O(1) per binding over its lifetime — not a table scan; serving paths
// never call it.
func (s *Service) Purge(now time.Time) int {
	nowNs := now.UnixNano()
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		s.lock(sh)
		removed += sh.advance(s, nowNs)
		sh.mu.Unlock()
	}
	return removed
}

// HandleRegister applies a REGISTER request to the service and returns the
// response to send. source is the network address the request arrived
// from; transport is "UDP" or "TCP".
func (s *Service) HandleRegister(req *sipmsg.Message, source, transport string, now time.Time) *sipmsg.Message {
	// Registrar work is the REGISTER request's location stage.
	t0 := time.Now()
	defer trace.Of(req).Span(trace.StageLocation, t0)
	toVal, ok := req.Get("To")
	if !ok {
		return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
	}
	to, err := sipmsg.ParseNameAddr(toVal)
	if err != nil {
		return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
	}

	contactVal, ok := req.Get("Contact")
	if !ok {
		// Query-style REGISTER (RFC 3261 §10.3 step 8): no Contact means
		// "tell me my current bindings" — list each live one with its
		// remaining lifetime.
		resp := sipmsg.NewResponse(req, sipmsg.StatusOK, sipmsg.NewTag())
		var stack [8]Binding
		bs, err := s.Lookup(to.URI.AOR(), now, stack[:0])
		if err == nil {
			for _, b := range bs {
				resp.Add("Contact", contactWithExpires(b, now))
			}
		}
		return resp
	}
	contact, err := sipmsg.ParseNameAddr(contactVal)
	if err != nil {
		return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
	}

	ttl := DefaultExpiry
	if v, ok := req.Get("Expires"); ok {
		secs, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || secs < 0 {
			return sipmsg.NewResponse(req, sipmsg.StatusBadRequest, "")
		}
		ttl = time.Duration(secs) * time.Second
	}
	s.RegisterContact(to.URI, Binding{
		Contact:   contact.URI,
		Transport: transport,
		Source:    source,
	}, ttl, now)
	resp := sipmsg.NewResponse(req, sipmsg.StatusOK, sipmsg.NewTag())
	resp.Add("Contact", contact.String())
	if ttl > 0 {
		resp.Add("Expires", strconv.Itoa(int(ttl/time.Second)))
	}
	return resp
}

// contactWithExpires renders "<uri>;expires=N" with the binding's
// remaining lifetime in whole seconds, as §10.3 requires in REGISTER
// responses.
func contactWithExpires(b Binding, now time.Time) string {
	remain := int(b.Expires.Sub(now) / time.Second)
	if remain < 0 {
		remain = 0
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, '<')
	buf = b.Contact.AppendTo(buf)
	buf = append(buf, ">;expires="...)
	buf = strconv.AppendInt(buf, int64(remain), 10)
	return string(buf)
}
