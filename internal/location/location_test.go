package location

import (
	"strings"
	"testing"
	"time"

	"gosip/internal/metrics"
	"gosip/internal/sipmsg"
)

func mkBinding(host string, port int) Binding {
	return Binding{
		Contact:   sipmsg.URI{User: "u", Host: host, Port: port},
		Transport: "UDP",
		Source:    host + ":5060",
	}
}

func TestRegisterLookup(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@example.com", mkBinding("10.0.0.1", 5062), time.Hour, now)
	bs, err := s.Lookup("bob@example.com", now, nil)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(bs) != 1 || bs[0].Contact.Host != "10.0.0.1" {
		t.Errorf("bindings = %+v", bs)
	}
	if _, err := s.Lookup("carol@example.com", now, nil); err != ErrNoBinding {
		t.Errorf("missing AOR: %v", err)
	}
}

func TestLookupUsesCallerBuffer(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Minute, now)
	s.Register("bob@x.com", mkBinding("10.0.0.2", 2), time.Hour, now)
	var buf [4]Binding
	bs, err := s.Lookup("bob@x.com", now, buf[:0])
	if err != nil || len(bs) != 2 {
		t.Fatalf("bindings = %v, err = %v", bs, err)
	}
	if &bs[0] != &buf[0] {
		t.Error("Lookup did not fill the caller-provided buffer")
	}
}

func TestRegisterRefreshReplacesSameContact(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 5062), time.Minute, now)
	s.Register("bob@x.com", mkBinding("10.0.0.1", 5062), time.Hour, now.Add(time.Second))
	bs, err := s.Lookup("bob@x.com", now.Add(2*time.Second), nil)
	if err != nil || len(bs) != 1 {
		t.Fatalf("bindings = %v, err = %v", bs, err)
	}
	if bs[0].Expires.Sub(now) < 30*time.Minute {
		t.Error("refresh did not extend expiry")
	}
	if s.Bindings() != 1 {
		t.Errorf("Bindings = %d, want 1", s.Bindings())
	}
}

func TestSameContactComparesHostCaseInsensitively(t *testing.T) {
	s := New()
	now := time.Now()
	b := mkBinding("Host.Example.COM", 5062)
	s.Register("bob@x.com", b, time.Minute, now)
	b.Contact.Host = "host.example.com"
	s.Register("bob@x.com", b, time.Hour, now)
	bs, err := s.Lookup("bob@x.com", now, nil)
	if err != nil || len(bs) != 1 {
		t.Fatalf("case-differing hosts made distinct bindings: %v, err = %v", bs, err)
	}
}

func TestMultipleContactsFreshestFirst(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Minute, now)
	s.Register("bob@x.com", mkBinding("10.0.0.2", 2), time.Hour, now)
	bs, err := s.Lookup("bob@x.com", now, nil)
	if err != nil || len(bs) != 2 {
		t.Fatalf("bindings = %v, err = %v", bs, err)
	}
	if bs[0].Contact.Host != "10.0.0.2" {
		t.Errorf("freshest first: %+v", bs)
	}
}

func TestLookupOne(t *testing.T) {
	s := New()
	now := time.Now()
	uri := sipmsg.URI{User: "bob", Host: "X.com"}
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Minute, now)
	s.Register("bob@x.com", mkBinding("10.0.0.2", 2), time.Hour, now)
	b, ok := s.LookupOne(uri, now)
	if !ok || b.Contact.Host != "10.0.0.2" {
		t.Errorf("LookupOne = %+v, %v", b, ok)
	}
	if _, ok := s.LookupOne(sipmsg.URI{User: "carol", Host: "x.com"}, now); ok {
		t.Error("LookupOne found a missing AOR")
	}
	if _, ok := s.LookupOne(uri, now.Add(2*time.Hour)); ok {
		t.Error("LookupOne returned a lapsed binding")
	}
}

func TestExpiryAndPurge(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Second, now)
	if _, err := s.Lookup("bob@x.com", now.Add(2*time.Second), nil); err != ErrNoBinding {
		t.Errorf("expired binding returned: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len before purge = %d", s.Len())
	}
	if n := s.Purge(now.Add(2 * time.Second)); n != 1 {
		t.Errorf("Purge removed %d", n)
	}
	if s.Len() != 0 {
		t.Errorf("Len after purge = %d", s.Len())
	}
	if s.Bindings() != 0 {
		t.Errorf("Bindings after purge = %d", s.Bindings())
	}
}

// TestWheelExpiresOnlyLapsed drives the wheel far past one revolution and
// checks long-lived bindings survive while short ones are reclaimed.
func TestWheelExpiresOnlyLapsed(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("short@x.com", mkBinding("10.0.0.1", 1), 30*time.Second, now)
	s.Register("long@x.com", mkBinding("10.0.0.2", 2), time.Hour, now)

	// One revolution is 256 s: advancing 10 minutes forces the hour-long
	// binding to relink at least once.
	if n := s.Purge(now.Add(10 * time.Minute)); n != 1 {
		t.Fatalf("Purge removed %d, want 1", n)
	}
	if _, err := s.Lookup("long@x.com", now.Add(10*time.Minute), nil); err != nil {
		t.Fatalf("long binding lost: %v", err)
	}
	if n := s.Purge(now.Add(2 * time.Hour)); n != 1 {
		t.Fatalf("second Purge removed %d, want 1", n)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after all expired", s.Len())
	}
}

// TestWheelNeverExpiresEarly registers a binding and advances to just
// before its deadline: it must survive.
func TestWheelNeverExpiresEarly(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), 100*time.Second, now)
	if n := s.Purge(now.Add(99 * time.Second)); n != 0 {
		t.Fatalf("binding reclaimed %v early", time.Second)
	}
	if n := s.Purge(now.Add(102 * time.Second)); n != 1 {
		t.Errorf("binding not reclaimed after deadline: removed %d", n)
	}
}

func TestNodePoolRecycles(t *testing.T) {
	s := New()
	now := time.Now()
	// Churn one AOR through register/deregister cycles; the shard pool
	// should keep the heap footprint flat (verified exactly by the alloc
	// test; here just exercise the path).
	for i := 0; i < 100; i++ {
		s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
		s.Register("bob@x.com", mkBinding("10.0.0.1", 1), 0, now)
	}
	if s.Len() != 0 || s.Bindings() != 0 {
		t.Errorf("Len = %d, Bindings = %d after churn", s.Len(), s.Bindings())
	}
}

func TestDeregisterWithZeroTTL(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), 0, now)
	if _, err := s.Lookup("bob@x.com", now, nil); err != ErrNoBinding {
		t.Error("zero-TTL register did not remove binding")
	}
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	s := NewService(Options{Shards: 5})
	if s.ShardCount() != 8 {
		t.Errorf("ShardCount = %d, want 8", s.ShardCount())
	}
	if New().ShardCount() != DefaultShards {
		t.Errorf("default ShardCount = %d", New().ShardCount())
	}
}

func TestLockWaitMetricWired(t *testing.T) {
	prof := metrics.NewProfile()
	s := NewService(Options{Shards: 1, Profile: prof})
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
	if c := prof.Counter(metrics.MetricLocRegistered).Value(); c != 1 {
		t.Errorf("registered counter = %d", c)
	}
	snap := prof.Snapshot()
	if _, ok := snap.Gauges[metrics.GaugeLocBindings]; !ok {
		t.Error("location.bindings gauge not registered")
	}
	if snap.Gauges[metrics.GaugeLocBindings] != 1 {
		t.Errorf("bindings gauge = %g", snap.Gauges[metrics.GaugeLocBindings])
	}
}

func registerMsg(t *testing.T, aor, contact string, expires string) *sipmsg.Message {
	t.Helper()
	uri, err := sipmsg.ParseURI("sip:" + aor)
	if err != nil {
		t.Fatal(err)
	}
	m := sipmsg.NewRequest(sipmsg.RequestSpec{
		Method:     sipmsg.REGISTER,
		RequestURI: sipmsg.URI{Host: uri.Host},
		From:       sipmsg.NameAddr{URI: uri, Params: map[string]string{"tag": "t1"}},
		To:         sipmsg.NameAddr{URI: uri},
		CallID:     sipmsg.NewCallID("phone"),
		CSeq:       1,
		Via:        sipmsg.Via{Transport: "UDP", Host: "10.0.0.9", Port: 5070},
	})
	if contact != "" {
		m.Add("Contact", "<sip:"+contact+">")
	}
	if expires != "" {
		m.Set("Expires", expires)
	}
	return m
}

func TestHandleRegisterOK(t *testing.T) {
	s := New()
	now := time.Now()
	req := registerMsg(t, "bob@example.com", "bob@10.0.0.9:5070", "600")
	resp := s.HandleRegister(req, "10.0.0.9:40000", "UDP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v, ok := resp.Get("Expires"); !ok || v != "600" {
		t.Errorf("Expires = %q", v)
	}
	bs, err := s.Lookup("bob@example.com", now, nil)
	if err != nil {
		t.Fatalf("Lookup after register: %v", err)
	}
	if bs[0].Source != "10.0.0.9:40000" || bs[0].Transport != "UDP" {
		t.Errorf("binding = %+v", bs[0])
	}
}

func TestHandleRegisterDefaultsExpiry(t *testing.T) {
	s := New()
	now := time.Now()
	resp := s.HandleRegister(registerMsg(t, "bob@x.com", "bob@1.2.3.4", ""), "1.2.3.4:5", "TCP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	bs, _ := s.Lookup("bob@x.com", now, nil)
	if want := now.Add(DefaultExpiry); bs[0].Expires.Before(want.Add(-time.Second)) {
		t.Errorf("expiry = %v, want ~%v", bs[0].Expires, want)
	}
}

func TestHandleRegisterErrors(t *testing.T) {
	s := New()
	now := time.Now()
	// Bad Expires.
	resp := s.HandleRegister(registerMsg(t, "bob@x.com", "bob@1.2.3.4", "soon"), "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusBadRequest {
		t.Errorf("bad expires: status = %d", resp.StatusCode)
	}
	// Malformed To.
	req := registerMsg(t, "bob@x.com", "bob@1.2.3.4", "60")
	req.Set("To", "<sip:broken")
	resp = s.HandleRegister(req, "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusBadRequest {
		t.Errorf("bad To: status = %d", resp.StatusCode)
	}
}

// TestHandleRegisterQueryListsBindings covers RFC 3261 §10.3 step 8: a
// Contact-less REGISTER is a query and the 200 must carry every live
// binding with its remaining lifetime.
func TestHandleRegisterQueryListsBindings(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 5062), 600*time.Second, now)
	s.Register("bob@x.com", mkBinding("10.0.0.2", 5063), 1200*time.Second, now)

	q := registerMsg(t, "bob@x.com", "", "")
	resp := s.HandleRegister(q, "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Fatalf("query register: status = %d", resp.StatusCode)
	}
	contacts := resp.GetAll("Contact")
	if len(contacts) != 2 {
		t.Fatalf("query response lists %d contacts, want 2: %v", len(contacts), contacts)
	}
	// Freshest first, each with remaining expires.
	if !strings.Contains(contacts[0], "10.0.0.2") || !strings.Contains(contacts[0], ";expires=1200") {
		t.Errorf("contact[0] = %q", contacts[0])
	}
	if !strings.Contains(contacts[1], "10.0.0.1") || !strings.Contains(contacts[1], ";expires=600") {
		t.Errorf("contact[1] = %q", contacts[1])
	}

	// An AOR with no bindings still answers 200, with no Contact.
	resp = s.HandleRegister(registerMsg(t, "carol@x.com", "", ""), "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Fatalf("empty query: status = %d", resp.StatusCode)
	}
	if got := resp.GetAll("Contact"); len(got) != 0 {
		t.Errorf("empty query lists contacts: %v", got)
	}
}

func TestLenCountsAORs(t *testing.T) {
	s := New()
	now := time.Now()
	for i := 0; i < 40; i++ {
		aor := "user" + string(rune('a'+i%26)) + "@x.com"
		s.Register(aor, mkBinding("10.0.0.1", i+1), time.Hour, now)
	}
	if s.Len() != 26 {
		t.Errorf("Len = %d, want 26 distinct AORs", s.Len())
	}
}

func TestCloseStopsSweeper(t *testing.T) {
	s := NewService(Options{SweepInterval: time.Millisecond})
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
	s.Close()
	s.Close() // idempotent
}
