package location

import (
	"testing"
	"time"

	"gosip/internal/sipmsg"
)

func mkBinding(host string, port int) Binding {
	return Binding{
		Contact:   sipmsg.URI{User: "u", Host: host, Port: port},
		Transport: "UDP",
		Source:    host + ":5060",
	}
}

func TestRegisterLookup(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@example.com", mkBinding("10.0.0.1", 5062), time.Hour, now)
	bs, err := s.Lookup("bob@example.com", now)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(bs) != 1 || bs[0].Contact.Host != "10.0.0.1" {
		t.Errorf("bindings = %+v", bs)
	}
	if _, err := s.Lookup("carol@example.com", now); err != ErrNoBinding {
		t.Errorf("missing AOR: %v", err)
	}
}

func TestRegisterRefreshReplacesSameContact(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 5062), time.Minute, now)
	s.Register("bob@x.com", mkBinding("10.0.0.1", 5062), time.Hour, now.Add(time.Second))
	bs, err := s.Lookup("bob@x.com", now.Add(2*time.Second))
	if err != nil || len(bs) != 1 {
		t.Fatalf("bindings = %v, err = %v", bs, err)
	}
	if bs[0].Expires.Sub(now) < 30*time.Minute {
		t.Error("refresh did not extend expiry")
	}
}

func TestMultipleContactsFreshestFirst(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Minute, now)
	s.Register("bob@x.com", mkBinding("10.0.0.2", 2), time.Hour, now)
	bs, err := s.Lookup("bob@x.com", now)
	if err != nil || len(bs) != 2 {
		t.Fatalf("bindings = %v, err = %v", bs, err)
	}
	if bs[0].Contact.Host != "10.0.0.2" {
		t.Errorf("freshest first: %+v", bs)
	}
}

func TestExpiryAndPurge(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Second, now)
	if _, err := s.Lookup("bob@x.com", now.Add(2*time.Second)); err != ErrNoBinding {
		t.Errorf("expired binding returned: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len before purge = %d", s.Len())
	}
	if n := s.Purge(now.Add(2 * time.Second)); n != 1 {
		t.Errorf("Purge removed %d", n)
	}
	if s.Len() != 0 {
		t.Errorf("Len after purge = %d", s.Len())
	}
}

func TestDeregisterWithZeroTTL(t *testing.T) {
	s := New()
	now := time.Now()
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), time.Hour, now)
	s.Register("bob@x.com", mkBinding("10.0.0.1", 1), 0, now)
	if _, err := s.Lookup("bob@x.com", now); err != ErrNoBinding {
		t.Error("zero-TTL register did not remove binding")
	}
}

func registerMsg(t *testing.T, aor, contact string, expires string) *sipmsg.Message {
	t.Helper()
	uri, err := sipmsg.ParseURI("sip:" + aor)
	if err != nil {
		t.Fatal(err)
	}
	m := sipmsg.NewRequest(sipmsg.RequestSpec{
		Method:     sipmsg.REGISTER,
		RequestURI: sipmsg.URI{Host: uri.Host},
		From:       sipmsg.NameAddr{URI: uri, Params: map[string]string{"tag": "t1"}},
		To:         sipmsg.NameAddr{URI: uri},
		CallID:     sipmsg.NewCallID("phone"),
		CSeq:       1,
		Via:        sipmsg.Via{Transport: "UDP", Host: "10.0.0.9", Port: 5070},
	})
	if contact != "" {
		m.Add("Contact", "<sip:"+contact+">")
	}
	if expires != "" {
		m.Set("Expires", expires)
	}
	return m
}

func TestHandleRegisterOK(t *testing.T) {
	s := New()
	now := time.Now()
	req := registerMsg(t, "bob@example.com", "bob@10.0.0.9:5070", "600")
	resp := s.HandleRegister(req, "10.0.0.9:40000", "UDP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v, ok := resp.Get("Expires"); !ok || v != "600" {
		t.Errorf("Expires = %q", v)
	}
	bs, err := s.Lookup("bob@example.com", now)
	if err != nil {
		t.Fatalf("Lookup after register: %v", err)
	}
	if bs[0].Source != "10.0.0.9:40000" || bs[0].Transport != "UDP" {
		t.Errorf("binding = %+v", bs[0])
	}
}

func TestHandleRegisterDefaultsExpiry(t *testing.T) {
	s := New()
	now := time.Now()
	resp := s.HandleRegister(registerMsg(t, "bob@x.com", "bob@1.2.3.4", ""), "1.2.3.4:5", "TCP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	bs, _ := s.Lookup("bob@x.com", now)
	if want := now.Add(DefaultExpiry); bs[0].Expires.Before(want.Add(-time.Second)) {
		t.Errorf("expiry = %v, want ~%v", bs[0].Expires, want)
	}
}

func TestHandleRegisterErrors(t *testing.T) {
	s := New()
	now := time.Now()
	// Bad Expires.
	resp := s.HandleRegister(registerMsg(t, "bob@x.com", "bob@1.2.3.4", "soon"), "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusBadRequest {
		t.Errorf("bad expires: status = %d", resp.StatusCode)
	}
	// Malformed To.
	req := registerMsg(t, "bob@x.com", "bob@1.2.3.4", "60")
	req.Set("To", "<sip:broken")
	resp = s.HandleRegister(req, "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusBadRequest {
		t.Errorf("bad To: status = %d", resp.StatusCode)
	}
	// Query-style: no Contact.
	q := registerMsg(t, "bob@x.com", "", "")
	resp = s.HandleRegister(q, "a:1", "UDP", now)
	if resp.StatusCode != sipmsg.StatusOK {
		t.Errorf("query register: status = %d", resp.StatusCode)
	}
}

func TestLenCountsAORs(t *testing.T) {
	s := New()
	now := time.Now()
	for i := 0; i < 40; i++ {
		aor := "user" + string(rune('a'+i%26)) + "@x.com"
		s.Register(aor, mkBinding("10.0.0.1", i+1), time.Hour, now)
	}
	if s.Len() != 26 {
		t.Errorf("Len = %d, want 26 distinct AORs", s.Len())
	}
}
